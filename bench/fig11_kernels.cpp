// Reproduces paper Fig. 11: effective GFlop/s of the tall-skinny kernels.
//  (a) DGEMM (the CholQR/SVQR Gram kernel): CUBLAS-4.2-class vs the
//      paper's batched implementation vs the 16-core MKL host;
//  (b) DGEMV (the CGS projection kernel): CUBLAS-class vs the optimized
//      MAGMA-class kernel vs DDOT;
//  (c) TSQR: all five procedures on 1-3 GPUs plus the threaded-LAPACK host
//      baseline, effective rate = 4 n s^2 / time (DGEQRF+DORGQR flops).
//
// Expected shape: batched DGEMM ~4x CUBLAS on tall-skinny shapes and above
// MKL; optimized DGEMV ~5x CUBLAS; CholQR/SVQR inherit the DGEMM rate and
// dominate Fig. 11(c), CAQR/MGS sit at BLAS-1/2 rates, and everything
// scales across 3 GPUs.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ortho/tsqr.hpp"
#include "sim/device_blas.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

void plot_gemm(int cols, const std::vector<int>& sizes) {
  std::printf("== Fig 11(a) — tall-skinny DGEMM (n x %d Gram), GFlop/s ==\n\n",
              cols);
  Table table({"rows n", "cublas-class", "batched (opt)", "MKL 16-core"});
  sim::PerfModel std_pm;
  std_pm.profile = sim::KernelProfile::kStandard;
  sim::PerfModel opt_pm;
  opt_pm.profile = sim::KernelProfile::kOptimized;
  for (const int n : sizes) {
    const double flops = static_cast<double>(n) * cols * (cols + 1);
    const double bytes = 8.0 * (static_cast<double>(n) * cols +
                                static_cast<double>(cols) * cols);
    const double t_std = std_pm.device_seconds(sim::Kernel::kGemm, flops, bytes);
    const double t_opt = opt_pm.device_seconds(sim::Kernel::kGemm, flops, bytes);
    const double t_cpu = std_pm.host_seconds(sim::Kernel::kGemm, flops, bytes);
    table.add_row({std::to_string(n), Table::fmt(flops / t_std / 1e9, 1),
                   Table::fmt(flops / t_opt / 1e9, 1),
                   Table::fmt(flops / t_cpu / 1e9, 1)});
  }
  std::printf("%s\n", table.str().c_str());
}

void plot_gemv(int cols, const std::vector<int>& sizes) {
  std::printf("== Fig 11(b) — tall-skinny DGEMV (n x %d), GFlop/s ==\n\n",
              cols);
  Table table({"rows n", "cublas-class", "magma-opt", "ddot"});
  sim::PerfModel std_pm;
  std_pm.profile = sim::KernelProfile::kStandard;
  sim::PerfModel opt_pm;
  opt_pm.profile = sim::KernelProfile::kOptimized;
  for (const int n : sizes) {
    const double flops = 2.0 * n * cols;
    const double bytes = 8.0 * (static_cast<double>(n) * cols + n + cols);
    const double t_std = std_pm.device_seconds(sim::Kernel::kGemv, flops, bytes);
    const double t_opt = opt_pm.device_seconds(sim::Kernel::kGemv, flops, bytes);
    // DDOT comparison: `cols` separate dot products.
    const double t_dot =
        cols * std_pm.device_seconds(sim::Kernel::kDot, 2.0 * n, 16.0 * n);
    table.add_row({std::to_string(n), Table::fmt(flops / t_std / 1e9, 1),
                   Table::fmt(flops / t_opt / 1e9, 1),
                   Table::fmt(flops / t_dot / 1e9, 1)});
  }
  std::printf("%s\n", table.str().c_str());
}

void plot_tsqr(int cols, int n) {
  std::printf(
      "== Fig 11(c) — TSQR effective GFlop/s (n=%d, s+1=%d columns) ==\n"
      "   effective rate = 4 n (s+1)^2 / time, the DGEQRF+DORGQR flop "
      "count\n\n",
      n, cols);
  Table table({"method", "1 GPU", "2 GPUs", "3 GPUs"});
  const double eff_flops = 4.0 * static_cast<double>(n) * cols * cols;

  for (const auto method :
       {ortho::Method::kMgs, ortho::Method::kCgs, ortho::Method::kCholQr,
        ortho::Method::kSvqr, ortho::Method::kCaqr}) {
    std::vector<std::string> row = {ortho::to_string(method)};
    for (int ng = 1; ng <= 3; ++ng) {
      sim::Machine machine(ng);
      std::vector<int> rows(static_cast<std::size_t>(ng));
      for (int d = 0; d < ng; ++d) {
        rows[static_cast<std::size_t>(d)] =
            static_cast<int>((static_cast<long long>(n) * (d + 1)) / ng -
                             (static_cast<long long>(n) * d) / ng);
      }
      sim::DistMultiVec v(rows, cols);
      Rng rng(4);
      for (int d = 0; d < ng; ++d) {
        for (int j = 0; j < cols; ++j) {
          for (int i = 0; i < v.local_rows(d); ++i) {
            v.col(d, j)[i] = rng.normal();
          }
        }
      }
      ortho::tsqr(machine, method, v, 0, cols);
      machine.sync_all();
      row.push_back(
          Table::fmt(eff_flops / machine.clock().elapsed() / 1e9, 1));
    }
    table.add_row(row);
  }
  // Threaded LAPACK host baseline (MKL DGEQRF + DORGQR model).
  {
    sim::PerfModel pm;
    const double t = pm.host_seconds(sim::Kernel::kGeqrf, eff_flops,
                                     8.0 * 2.0 * n * cols);
    table.add_row({"lapack (host)", Table::fmt(eff_flops / t / 1e9, 1), "-",
                   "-"});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig11_kernels — paper Fig. 11: tall-skinny DGEMM/DGEMV/TSQR "
      "effective rates under the calibrated device model");
  opts.add("plot", "all", "which panel: gemm|gemv|tsqr|all");
  opts.add("cols", "30", "panel width s+1 (paper: 30)");
  opts.add("n", "300000", "panel rows for the TSQR panel");
  opts.add("sizes", "1000,10000,100000,1000000,3000000",
           "row counts for the rate curves");
  if (!opts.parse(argc, argv)) return 0;

  const std::string plot = opts.get("plot");
  const int cols = opts.get_int("cols");
  const std::vector<int> sizes = opts.get_int_list("sizes");
  if (plot == "gemm" || plot == "all") plot_gemm(cols, sizes);
  if (plot == "gemv" || plot == "all") plot_gemv(cols, sizes);
  if (plot == "tsqr" || plot == "all") plot_tsqr(cols, opts.get_int("n"));
  return 0;
}
