// Reproduces paper Fig. 15: time per restart loop of GMRES and CA-GMRES,
// normalized to GMRES on one GPU, for all four matrices (including the
// nlpkkt analog with s = 10), broken into Orth / SpMV-MPK / rest.
//
// Per the paper's caption, CA-GMRES uses SpMV instead of MPK when SpMV is
// faster (we pick by a simulated dry run). Expected shape: bars shrink with
// more GPUs; the CA-GMRES bar beats the same-ng GMRES bar by 1.3-2x, with
// the Orth segment providing most of the saving.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "mpk/exec.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

/// Simulated dry-run: is one MPK(s) call faster than s SpMVs? (Fig. 15
/// caption: "if SpMV is faster than MPK, then CA-GMRES uses SpMV".)
bool mpk_wins(const core::Problem& p, int s, int ng) {
  const mpk::MpkPlan plan_s = mpk::build_mpk_plan(p.a, p.offsets, s);
  const mpk::MpkPlan plan_1 = mpk::build_mpk_plan(p.a, p.offsets, 1);
  mpk::MpkExecutor mexec(plan_s);
  mpk::MpkExecutor sexec(plan_1);
  sim::DistMultiVec v(plan_s.rows_per_device(), s + 1);
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = 1.0;
  }
  sim::Machine m1(ng), m2(ng);
  mexec.apply(m1, v, 0, s);
  m1.sync_all();
  for (int k = 0; k < s; ++k) sexec.spmv(m2, v, 0, 1);
  m2.sync_all();
  return m1.clock().elapsed() < m2.clock().elapsed();
}

void run_matrix(const std::string& name, double scale, int s, double tol,
                std::uint64_t seed, int max_restarts) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  const int m = bench::default_m(name);
  const std::string oname = bench::default_ordering(name);
  bench::print_header("Fig 15 — " + name + " (m=" + std::to_string(m) +
                          ", s=" + std::to_string(s) + ")",
                      a);
  const std::vector<double> b = bench::make_rhs(a.n_rows, seed);

  Table table({"solver", "ng", "rest", "Orth", "SpMV/MPK", "rest(other)",
               "Total (norm.)", "SpdUp vs GMRES"});
  double norm_base = 0.0;
  std::vector<double> gmres_total(4, 0.0);

  for (int ng = 1; ng <= 3; ++ng) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 7);
    core::SolverOptions opts;
    opts.m = m;
    opts.tol = tol;
    opts.max_restarts = max_restarts;
    sim::Machine machine(ng);
    const core::SolveResult res = core::gmres(machine, p, opts);
    const auto& st = res.stats;
    const double per = st.restarts ? st.time_total / st.restarts : 0.0;
    if (ng == 1) norm_base = per;
    gmres_total[static_cast<std::size_t>(ng)] = per;
    table.add_row(
        {"GMRES", std::to_string(ng), std::to_string(st.restarts),
         Table::fmt(st.restarts ? st.time_ortho_total() / st.restarts / norm_base : 0, 2),
         Table::fmt(st.restarts ? st.time_spmv / st.restarts / norm_base : 0, 2),
         Table::fmt(st.restarts ? st.time_other / st.restarts / norm_base : 0, 2),
         Table::fmt(per / norm_base, 2), st.converged ? "" : "(nc)"});
  }
  table.add_separator();
  for (int ng = 1; ng <= 3; ++ng) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 7);
    core::SolverOptions opts;
    opts.m = m;
    opts.s = s;
    opts.tol = tol;
    opts.max_restarts = max_restarts;
    opts.reorthogonalize = true;
    opts.use_mpk = mpk_wins(p, s, ng);
    sim::Machine machine(ng);
    const core::SolveResult res = core::ca_gmres(machine, p, opts);
    const auto& st = res.stats;
    const double per = st.restarts ? st.time_total / st.restarts : 0.0;
    std::string spd = st.converged ? "" : "(nc)";
    if (per > 0.0) {
      spd = Table::fmt(gmres_total[static_cast<std::size_t>(ng)] / per, 2) +
            spd;
    }
    table.add_row(
        {std::string("CA-GMRES") + (opts.use_mpk ? " (MPK)" : " (SpMV)"),
         std::to_string(ng), std::to_string(st.restarts),
         Table::fmt(st.restarts ? st.time_ortho_total() / st.restarts / norm_base : 0, 2),
         Table::fmt(st.restarts ? (st.time_spmv + st.time_mpk) / st.restarts / norm_base : 0, 2),
         Table::fmt(st.restarts ? st.time_other / st.restarts / norm_base : 0, 2),
         Table::fmt(per / norm_base, 2), spd});
  }
  std::printf("times normalized to GMRES on 1 GPU (=1.00)\n%s\n",
              table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig15_summary — paper Fig. 15: normalized time per restart loop, "
      "GMRES vs CA-GMRES(s=10), all four matrices");
  opts.add("scale", "1.0", "matrix scale for cant/g3/diel");
  opts.add("kkt_scale", "0.5", "matrix scale for the nlpkkt analog");
  opts.add("s", "10", "CA-GMRES block size (paper Fig. 15: 10)");
  opts.add("tol", "1e-4", "relative residual tolerance");
  opts.add("seed", "1234", "rhs seed");
  opts.add("max_restarts", "8",
           "restart cap for the timing runs (per-restart averages stabilize "
           "after a few; raise to 1000 to reproduce full convergence counts)");
  if (!opts.parse(argc, argv)) return 0;

  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  run_matrix("cant", opts.get_double("scale"), opts.get_int("s"),
             opts.get_double("tol"), seed, opts.get_int("max_restarts"));
  run_matrix("g3_circuit", opts.get_double("scale"), opts.get_int("s"),
             opts.get_double("tol"), seed, opts.get_int("max_restarts"));
  run_matrix("dielfilter", opts.get_double("scale"), opts.get_int("s"),
             opts.get_double("tol"), seed, opts.get_int("max_restarts"));
  run_matrix("nlpkkt", opts.get_double("kkt_scale"), opts.get_int("s"),
             opts.get_double("tol"), seed, opts.get_int("max_restarts"));
  return 0;
}
