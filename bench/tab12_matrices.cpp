// Reproduces paper Fig. 12 (the test-matrix table): per analog, size,
// nnz/row, the dominant Ritz ratio theta_1/theta_2 (driver of the monomial
// basis's instability), and kappa(B) — the condition number of the last
// TSQR block's Gram matrix from the first CA restart with the Fig. 14
// setups.
#include <cmath>
#include <complex>
#include <cstdio>

#include "bench_common.hpp"
#include "blas/eig.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "tab12_matrices — paper Fig. 12: analog matrix properties incl. "
      "theta1/theta2 and kappa(B)");
  opts.add("scale", "1.0", "scale for cant/g3/diel");
  opts.add("kkt_scale", "0.5", "scale for nlpkkt");
  opts.add("seed", "1234", "rhs seed");
  if (!opts.parse(argc, argv)) return 0;

  Table table({"analog", "n/1000", "nnz/row", "theta1/theta2", "kappa(B)",
               "paper n/1000", "paper nnz/row"});
  struct Paper {
    const char* name;
    double n, nnzrow;
  };
  const Paper papers[] = {{"cant", 62, 64.2},
                          {"g3_circuit", 1585, 4.8},
                          {"dielfilter", 1157, 41.9},
                          {"nlpkkt", 3542, 26.9}};

  for (const Paper& pp : papers) {
    const double scale = std::string(pp.name) == "nlpkkt"
                             ? opts.get_double("kkt_scale")
                             : opts.get_double("scale");
    const sparse::CsrMatrix a = sparse::make_paper_matrix(pp.name, scale);
    const sparse::MatrixStats st = sparse::compute_stats(a);
    const std::vector<double> b = bench::make_rhs(
        a.n_rows, static_cast<std::uint64_t>(opts.get_int("seed")));
    const core::Problem p = core::make_problem(
        a, b, 1,
        graph::parse_ordering(bench::default_ordering(pp.name)), true, 7);

    // theta1/theta2: two largest Ritz values of one GMRES(m) cycle.
    core::SolverOptions so;
    so.m = bench::default_m(pp.name);
    so.s = 15;
    so.max_restarts = 2;  // first = shift harvest, second = one CA cycle
    so.collect_tsqr_errors = true;
    sim::Machine machine(1);
    const core::SolveStats stats = core::ca_gmres(machine, p, so).stats;

    double ratio = 0.0;
    // kappa(B) of the LAST block of the last CA restart (paper's
    // definition: the Gram matrix squares the block's condition number).
    double kappa_b = 0.0;
    int last_restart = -1;
    for (const auto& e : stats.tsqr_errors) last_restart = e.restart;
    for (const auto& e : stats.tsqr_errors) {
      if (e.restart == last_restart && e.pass == 0) {
        kappa_b = e.kappa_block * e.kappa_block;  // Gram squares kappa(V)
      }
    }
    // theta1/theta2 via Hessenberg eigenvalues of a short Arnoldi run.
    {
      const mpk::MpkPlan plan = mpk::build_mpk_plan(p.a, p.offsets, 1);
      mpk::MpkExecutor spmv(plan);
      sim::Machine m3(1);
      sim::DistMultiVec v(plan.rows_per_device(), 31);
      sim::DistVec bb(plan.rows_per_device());
      bb.assign_from_host(p.b);
      sim::DistMultiVec xw(plan.rows_per_device(), 2);
      const double beta =
          core::detail::compute_residual(m3, spmv, bb, xw, v, 0, true);
      for (int d = 0; d < 1; ++d) {
        for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] /= beta;
      }
      const auto cyc = core::detail::arnoldi_cycle(
          m3, spmv, v, 30, ortho::Method::kCgs, beta, 0.0);
      blas::DMat hs(cyc.k, cyc.k);
      for (int j = 0; j < cyc.k; ++j) {
        for (int i = 0; i < cyc.k; ++i) hs(i, j) = cyc.h(i, j);
      }
      auto eig = blas::hessenberg_eig(hs);
      double t1 = 0.0, t2 = 0.0;
      for (const auto& e : eig) {
        const double mag = std::abs(e);
        if (mag > t1) {
          t2 = t1;
          t1 = mag;
        } else if (mag > t2) {
          t2 = mag;
        }
      }
      ratio = (t2 > 0.0) ? t1 / t2 : 0.0;
    }

    char kb[24];
    std::snprintf(kb, sizeof kb, "%.2e", kappa_b);
    table.add_row({pp.name, Table::fmt(a.n_rows / 1000.0, 1),
                   Table::fmt(st.avg_row_nnz, 1), Table::fmt(ratio, 4), kb,
                   Table::fmt(pp.n, 0), Table::fmt(pp.nnzrow, 1)});
  }
  std::printf("== Fig 12 table — test matrix analogs ==\n\n%s\n",
              table.str().c_str());
  return 0;
}
