// Reproduces paper Fig. 3: standard GMRES throughput on the 16-core CPU
// (threaded-MKL model) vs 1-3 simulated GPUs, per test matrix.
//
// Reported as time per iteration and speedup over the CPU. Expected shape:
// one GPU beats the 16-core CPU (device memory bandwidth >> host), and the
// GPU curve scales to 3 devices with diminishing returns as the PCIe
// reductions start to matter.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cpu_gmres.hpp"
#include "core/gmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

void run_matrix(const std::string& name, double scale, double tol,
                std::uint64_t seed, int max_restarts) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  const int m = bench::default_m(name);
  const std::string oname = bench::default_ordering(name);
  bench::print_header(
      "Fig 3 — GMRES(" + std::to_string(m) + ") baseline: " + name, a);

  Table table({"platform", "rest", "iters", "time/iter (ms)", "Orth/iter",
               "SpMV/iter", "speedup vs CPU"});
  const std::vector<double> b = bench::make_rhs(a.n_rows, seed);

  core::SolverOptions opts;
  opts.m = m;
  opts.tol = tol;
  opts.max_restarts = max_restarts;

  double cpu_per_iter = 0.0;
  {
    const core::Problem p = core::make_problem(
        a, b, 1, graph::parse_ordering(oname), true, 7);
    sim::Machine machine(1);
    const core::SolveResult res = core::cpu_gmres(machine, p, opts);
    const auto& st = res.stats;
    cpu_per_iter = st.iterations > 0 ? st.time_total / st.iterations : 0.0;
    table.add_row({"16-core CPU (MKL model)", std::to_string(st.restarts),
                   std::to_string(st.iterations), bench::ms(cpu_per_iter),
                   bench::ms(st.iterations ? st.time_orth / st.iterations : 0),
                   bench::ms(st.iterations ? st.time_spmv / st.iterations : 0),
                   "1.00"});
  }
  for (int ng = 1; ng <= 3; ++ng) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 7);
    sim::Machine machine(ng);
    const core::SolveResult res = core::gmres(machine, p, opts);
    const auto& st = res.stats;
    const double per_iter =
        st.iterations > 0 ? st.time_total / st.iterations : 0.0;
    table.add_row({std::to_string(ng) + " GPU(s)", std::to_string(st.restarts),
                   std::to_string(st.iterations), bench::ms(per_iter),
                   bench::ms(st.iterations ? st.time_orth / st.iterations : 0),
                   bench::ms(st.iterations ? st.time_spmv / st.iterations : 0),
                   per_iter > 0 ? Table::fmt(cpu_per_iter / per_iter, 2)
                                : "-"});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig03_gmres_baseline — paper Fig. 3: GMRES on 16-core CPU vs 1-3 "
      "simulated GPUs");
  opts.add("scale", "1.0", "matrix scale factor");
  opts.add("tol", "1e-4", "relative residual tolerance");
  opts.add("seed", "1234", "rhs seed");
  opts.add("max_restarts", "8",
           "restart cap for the timing runs (per-restart averages stabilize "
           "after a few; raise to 1000 to reproduce full convergence counts)");
  opts.add("matrices", "cant,g3_circuit,dielfilter",
           "comma-separated matrix list");
  if (!opts.parse(argc, argv)) return 0;

  std::string list = opts.get("matrices");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    const std::string name = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      run_matrix(name, opts.get_double("scale"), opts.get_double("tol"),
                 static_cast<std::uint64_t>(opts.get_int("seed")),
                 opts.get_int("max_restarts"));
    }
    pos = (comma == std::string::npos) ? std::string::npos : comma + 1;
  }
  return 0;
}
