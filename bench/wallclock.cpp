// Real wall-clock benchmark for the host execution engine (DESIGN.md §9)
// and the cache-blocked tall-skinny BLAS paths.
//
// Two experiments, written to BENCH_wallclock.json:
//
//   1. solver_sweep — Fig. 14-style CA-GMRES and GMRES(CGS) workloads,
//      timed with std::chrono while sweeping the host worker count
//      (0 = inline serial legacy path, then 1, 2, n_g). The simulated
//      seconds and iteration counts are recorded alongside so the run
//      doubles as a byte-identity check: they must not move with the
//      worker count. Speedup is workers=n_g over workers=0; on a
//      single-core container (see "nproc" in the output) no speedup can
//      materialize — the engine's scaling needs real cores.
//
//   2. event_overlap — the same CA-GMRES workload solved once under
//      SyncMode::kBarrier (the seed's coarse host_wait_all structure) and
//      once under kEvent (per-buffer record/wait, DESIGN.md §10), solver
//      results byte-compared. The charged pipeline seconds must drop in
//      event mode: the halo exchange's consumers stop blocking on devices
//      they never read.
//
//   3. scale_sweep — the CA-GMRES workload fault-free at ng = 3, 8, 16, 64
//      devices, each on the flat single-node machine and (where the count
//      tiles) on a multi-node topology (2x4, 4x4, 8x8), recording the
//      charged seconds and the bytes that crossed the inter-node network
//      vs the intra-node links — the §VII projection of how the two-level
//      fabric prices the same algorithm.
//
//   4. hier_reduce — the deep shapes solved with the hierarchical two-stage
//      collectives on vs forced off, across both sync modes and worker
//      counts: all eight solutions bitwise identical, hier charging less,
//      and a single reduction placing at most one inter-node message per
//      node where the flat fold pays one per off-node device.
//
//   5. node_kill_recovery — at each multi-node shape, one whole-node kill
//      mid-solve, recovered once with hierarchical partner checkpointing
//      (SolverOptions::partner_checkpoint, the default) and once with the
//      flat host-checkpoint path. partner_cheaper records whether the
//      buddy scheme won in charged seconds; it must at ng >= 16.
//
//   6. gram_microbench — the blocked V^T·W Gram kernel and the V·R panel
//      update in blas3.cpp against naive triple loops, single-threaded,
//      on a panel shape (long m, narrow k) where the long dimension
//      doesn't fit in cache. This isolates the cache-blocking win from
//      any threading.
#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "blas/blas3.hpp"
#include "blas/matrix.hpp"
#include "common/options.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "core/precondition.hpp"
#include "ortho/reduce.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct SweepRow {
  std::string solver;
  int workers = 0;
  double wall_seconds = 0.0;
  double sim_seconds = 0.0;
  int iterations = 0;
  bool converged = false;
  bool identical_to_serial = false;
};

// Naive references: the pre-blocking triple loops, for the microbench only.
void gram_naive(int m, int k, const double* v, int ldv, const double* w,
                int ldw, double* g, int ldg) {
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < k; ++i) {
      double acc = 0.0;
      for (int p = 0; p < m; ++p) acc += v[i * ldv + p] * w[j * ldw + p];
      g[j * ldg + i] = acc;
    }
  }
}

void panel_update_naive(int m, int k, const double* w, int ldw,
                        const double* g, int ldg, double* v, int ldv) {
  for (int j = 0; j < k; ++j) {
    for (int i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int p = 0; p < k; ++p) acc += w[p * ldw + i] * g[j * ldg + p];
      v[j * ldv + i] -= acc;
    }
  }
}

template <typename Fn>
double best_of(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = now_seconds();
    fn();
    const double t1 = now_seconds();
    if (t1 - t0 < best) best = t1 - t0;
  }
  return best;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "Wall-clock bench: host-engine worker sweep on Fig. 14 workloads + "
      "blocked-vs-naive tall-skinny BLAS microbench. Writes --out JSON.");
  bench::add_matrix_options(opts, "g3_circuit", "0.5");
  opts.add("ng", "3", "simulated device count");
  opts.add("s", "15", "CA-GMRES step size");
  opts.add("tol", "1e-8", "relative convergence tolerance");
  opts.add("max-restarts", "40", "restart cap");
  // Default sized past a big L3: at 15 columns, 1M rows is a 120 MB panel,
  // so the naive loops pay DRAM for every re-read the blocking avoids.
  opts.add("gram-rows", "1000000", "microbench panel rows");
  opts.add("gram-cols", "15", "microbench panel columns (s)");
  opts.add("reps", "3", "microbench repetitions (best-of)");
  opts.add("smoke", "false", "tiny sizes: CI smoke run, numbers meaningless");
  opts.add("out", "BENCH_wallclock.json", "output path");
  if (!opts.parse(argc, argv)) return 0;

  const bool smoke = opts.get_bool("smoke");
  const double scale = smoke ? 0.15 : opts.get_double("scale");
  const int ng = opts.get_int("ng");
  const int gram_rows = smoke ? 20000 : opts.get_int("gram-rows");
  const int gram_cols = opts.get_int("gram-cols");
  const int reps = opts.get_int("reps");

  const std::string matrix_name = opts.get("matrix");
  const sparse::CsrMatrix a = sparse::make_paper_matrix(matrix_name, scale);
  const int m = smoke ? 20 : bench::default_m(matrix_name);
  const std::string oname = bench::default_ordering(matrix_name);
  bench::print_header("wall-clock worker sweep — " + matrix_name, a);
  const std::vector<double> b =
      bench::make_rhs(a.n_rows, opts.get_int("seed"));
  const core::Problem p =
      core::make_problem(a, b, ng, graph::parse_ordering(oname), true, 7);

  core::SolverOptions sopts;
  sopts.m = m;
  sopts.tol = opts.get_double("tol");
  sopts.max_restarts = smoke ? 4 : opts.get_int("max-restarts");

  std::vector<int> workers;
  for (const int w : {0, 1, 2, ng}) {
    if (std::find(workers.begin(), workers.end(), w) == workers.end()) {
      workers.push_back(w);
    }
  }

  std::vector<SweepRow> rows;
  for (const bool ca : {false, true}) {
    std::vector<double> x_serial;
    for (const int w : workers) {
      sim::Machine machine(ng);
      machine.set_host_workers(w);
      core::SolverOptions so = sopts;
      if (ca) so.s = smoke ? 5 : opts.get_int("s");
      const double t0 = now_seconds();
      const core::SolveResult res = ca ? core::ca_gmres(machine, p, so)
                                       : core::gmres(machine, p, so);
      const double t1 = now_seconds();
      SweepRow row;
      row.solver = ca ? "ca_gmres" : "gmres_cgs";
      row.workers = w;
      row.wall_seconds = t1 - t0;
      row.sim_seconds = res.stats.time_total;
      row.iterations = res.stats.iterations;
      row.converged = res.stats.converged;
      if (w == 0) x_serial = res.x;
      row.identical_to_serial = res.x == x_serial;
      rows.push_back(row);
      std::printf("  %-10s workers=%d  wall=%8.3fs  sim=%8.4fs  it=%d%s%s\n",
                  row.solver.c_str(), w, row.wall_seconds, row.sim_seconds,
                  row.iterations, row.converged ? "" : " (nc)",
                  row.identical_to_serial ? "" : "  RESULTS DIVERGED");
    }
  }

  // --- event overlap: barrier vs per-buffer event sync -------------------
  // Same problem, same worker count (0 — charged times are worker-
  // invariant); only the sync structure differs. The arithmetic is
  // identical in both modes, so x must match bitwise.
  double sim_barrier = 0.0, sim_event = 0.0;
  double mpk_barrier = 0.0, mpk_event = 0.0;
  double borth_barrier = 0.0, borth_event = 0.0;
  double tsqr_barrier = 0.0, tsqr_event = 0.0;
  bool event_identical = false;
  bool event_converged = true;
  {
    std::vector<double> x_barrier, x_event;
    for (const bool ev : {false, true}) {
      sim::Machine machine(ng);
      machine.set_sync_mode(ev ? sim::SyncMode::kEvent
                               : sim::SyncMode::kBarrier);
      core::SolverOptions so = sopts;
      so.s = smoke ? 5 : opts.get_int("s");
      const core::SolveResult res = core::ca_gmres(machine, p, so);
      (ev ? sim_event : sim_barrier) = res.stats.time_total;
      (ev ? mpk_event : mpk_barrier) = res.stats.time_mpk;
      (ev ? borth_event : borth_barrier) = res.stats.time_borth;
      (ev ? tsqr_event : tsqr_barrier) = res.stats.time_tsqr;
      (ev ? x_event : x_barrier) = res.x;
      event_converged = event_converged && res.stats.converged;
    }
    event_identical = x_event == x_barrier;
    std::printf(
        "\n  event_overlap: barrier sim=%.6fs  event sim=%.6fs  "
        "(%.4fx)%s\n",
        sim_barrier, sim_event,
        sim_event > 0.0 ? sim_barrier / sim_event : 0.0,
        event_identical ? "" : "  RESULTS DIVERGED");
    std::printf(
        "    ortho phases: mpk %.6fs -> %.6fs  borth %.6fs -> %.6fs  "
        "tsqr %.6fs -> %.6fs\n",
        mpk_barrier, mpk_event, borth_barrier, borth_event, tsqr_barrier,
        tsqr_event);
  }

  // --- scale sweep: ng x topology, fault-free ----------------------------
  struct ScaleRow {
    int ng = 0;
    int nodes = 1;
    double sim_seconds = 0.0;
    double net_bytes = 0.0;
    double peer_bytes = 0.0;
    int iterations = 0;
    bool converged = false;
  };
  struct KillRow {
    int ng = 0;
    int nodes = 1;
    bool partner = false;
    double sim_seconds = 0.0;
    double time_lost = 0.0;
    int node_failures = 0;
    int partner_restores = 0;
    bool converged = false;
  };
  std::vector<ScaleRow> scale_rows;
  std::vector<KillRow> kill_rows;
  {
    // ng -> multi-node shape (node count); 3 is the paper testbed and
    // stays flat-only.
    std::vector<std::pair<int, int>> shapes = {{3, 1}, {8, 2}};
    if (!smoke) {
      shapes.push_back({16, 4});
      shapes.push_back({64, 8});
    }
    std::printf("\n  scale sweep (ca_gmres, fault-free):\n");
    for (const auto& [sw_ng, sw_nodes] : shapes) {
      const core::Problem psw =
          sw_ng == ng ? p
                      : core::make_problem(a, b, sw_ng,
                                           graph::parse_ordering(oname),
                                           true, 7);
      // Node-first partition for the multi-node run of this shape (KWY
      // splits node-major so halo edges concentrate inside nodes).
      core::Problem pnode;
      if (sw_nodes > 1) {
        pnode = core::make_problem(a, b, sw_ng, graph::parse_ordering(oname),
                                   true, 7, sw_nodes);
      }
      double flat_hint = 0.0;
      std::vector<int> node_counts = {1};
      if (sw_nodes > 1) node_counts.push_back(sw_nodes);
      for (const int nodes : node_counts) {
        const core::Problem& pr = nodes > 1 ? pnode : psw;
        sim::Machine machine(sw_ng);
        if (nodes > 1) machine.set_topology(nodes, sw_ng / nodes);
        core::SolverOptions so = sopts;
        so.s = smoke ? 5 : opts.get_int("s");
        const core::SolveResult res = core::ca_gmres(machine, pr, so);
        ScaleRow row;
        row.ng = sw_ng;
        row.nodes = nodes;
        row.sim_seconds = res.stats.time_total;
        row.net_bytes = machine.counters().net_bytes;
        row.peer_bytes = machine.counters().peer_bytes;
        row.iterations = res.stats.iterations;
        row.converged = res.stats.converged;
        scale_rows.push_back(row);
        if (nodes == 1) flat_hint = res.stats.time_total;
        std::printf(
            "    ng=%-3d nodes=%d  sim=%9.4fs  net=%10.3g B  peer=%10.3g B"
            "  it=%d%s\n",
            sw_ng, nodes, row.sim_seconds, row.net_bytes, row.peer_bytes,
            row.iterations, row.converged ? "" : " (nc)");
        if (nodes == 1) continue;

        // Node-kill recovery at this shape: node 1 dies a quarter of the
        // way through the fault-free run; compare the partner-checkpoint
        // restore (default) against the flat host-checkpoint path.
        for (const bool partner : {true, false}) {
          sim::Machine mk(sw_ng);
          mk.set_topology(nodes, sw_ng / nodes);
          sim::FaultEvent kill;
          kill.kind = sim::FaultKind::kNodeFail;
          kill.device = 1;  // node id: a remote node, partner is alive
          kill.at_time = 0.25 * flat_hint;
          mk.fault_injector().schedule(kill);
          core::SolverOptions ko = so;
          ko.partner_checkpoint = partner;
          const core::SolveResult res_k = core::ca_gmres(mk, pr, ko);
          KillRow kr;
          kr.ng = sw_ng;
          kr.nodes = nodes;
          kr.partner = partner;
          kr.sim_seconds = res_k.stats.time_total;
          kr.time_lost = res_k.stats.recovery.time_lost;
          kr.node_failures = res_k.stats.recovery.node_failures;
          kr.partner_restores = res_k.stats.recovery.partner_restores;
          kr.converged = res_k.stats.converged;
          kill_rows.push_back(kr);
          std::printf(
              "    ng=%-3d nodes=%d  node-kill %-7s  sim=%9.4fs  "
              "lost=%8.4fs  partner_restores=%d%s\n",
              sw_ng, nodes, partner ? "partner" : "host", kr.sim_seconds,
              kr.time_lost, kr.partner_restores,
              kr.converged ? "" : " (nc)");
        }
        const std::size_t nk = kill_rows.size();
        const bool cheaper =
            kill_rows[nk - 2].sim_seconds < kill_rows[nk - 1].sim_seconds;
        std::printf("    ng=%-3d nodes=%d  partner_cheaper=%s\n", sw_ng,
                    nodes, cheaper ? "true" : "false");
      }
    }
  }

  // --- hier_reduce: two-stage node-grouped reductions vs flat fold -------
  // At each deep shape, the same node-first problem solved with the
  // hierarchical collectives on (Machine default for nodes > 1) and forced
  // off, across {barrier, event} x {0, 2 workers}: all eight solutions must
  // match bitwise (the fold tree is knob/mode/worker invariant; only the
  // charges move), hier must charge less, and a single reduction must put
  // at most `nodes` messages on the inter-node network where the flat fold
  // pays one per off-node device.
  struct HierRow {
    int ng = 0;
    int nodes = 1;
    double flat_sim = 0.0;
    double hier_sim = 0.0;
    long long flat_red_net_msgs = 0;
    long long hier_red_net_msgs = 0;
    bool identical = false;
    bool converged = true;
  };
  std::vector<HierRow> hier_rows;
  {
    std::vector<std::pair<int, int>> hshapes = {{8, 2}};
    if (!smoke) hshapes = {{16, 4}, {64, 8}};
    std::printf("\n  hier_reduce (two-stage vs flat fold):\n");
    for (const auto& [hng, hnodes] : hshapes) {
      const core::Problem ph = core::make_problem(
          a, b, hng, graph::parse_ordering(oname), true, 7, hnodes);
      HierRow hr;
      hr.ng = hng;
      hr.nodes = hnodes;
      hr.identical = true;
      std::vector<double> x0;
      bool first = true;
      for (const bool hier : {false, true}) {
        for (const bool ev : {false, true}) {
          for (const int w : {0, 2}) {
            sim::Machine mh(hng);
            mh.set_topology(hnodes, hng / hnodes);
            mh.set_hier_reduce(hier);
            mh.set_sync_mode(ev ? sim::SyncMode::kEvent
                                : sim::SyncMode::kBarrier);
            mh.set_host_workers(w);
            core::SolverOptions so = sopts;
            so.s = smoke ? 5 : opts.get_int("s");
            const core::SolveResult rs = core::ca_gmres(mh, ph, so);
            if (first) {
              x0 = rs.x;
              first = false;
            }
            hr.identical = hr.identical && rs.x == x0;
            hr.converged = hr.converged && rs.stats.converged;
            // Headline charge comparison at the default sync mode (event),
            // workers are charge-invariant.
            if (ev && w == 0) {
              (hier ? hr.hier_sim : hr.flat_sim) = rs.stats.time_total;
            }
          }
        }
      }
      // Per-reduction network message microcount: one bare reduce of ng
      // device partials on an otherwise idle machine.
      for (const bool hier : {false, true}) {
        sim::Machine mh(hng);
        mh.set_topology(hnodes, hng / hnodes);
        mh.set_hier_reduce(hier);
        std::vector<std::vector<double>> parts(
            static_cast<std::size_t>(hng), std::vector<double>(8, 1.0));
        std::vector<double> sum(8, 0.0);
        const std::int64_t before = mh.counters().net_msgs;
        ortho::detail::reduce_to_host(mh, parts, 8, sum.data());
        mh.sync();
        (hier ? hr.hier_red_net_msgs : hr.flat_red_net_msgs) =
            static_cast<long long>(mh.counters().net_msgs - before);
      }
      hier_rows.push_back(hr);
      std::printf(
          "    ng=%-3d %dx%-2d  flat=%9.4fs  hier=%9.4fs  (%.3fx)  "
          "red_net_msgs %lld -> %lld%s%s\n",
          hng, hnodes, hng / hnodes, hr.flat_sim, hr.hier_sim,
          hr.hier_sim > 0.0 ? hr.flat_sim / hr.hier_sim : 0.0,
          hr.flat_red_net_msgs, hr.hier_red_net_msgs,
          hr.converged ? "" : " (nc)",
          hr.identical ? "" : "  RESULTS DIVERGED");
    }
  }

  // --- compress: transfer codec layer (DESIGN.md §14) --------------------
  // The deep 4x4 shape solved with no codec, fp32 demotion on every class,
  // and FRSZ2:16 on the bandwidth-heavy classes. The coded runs carry REAL
  // quantized numerics, so iterations may move; the win is charged seconds
  // and per-tier wire bytes.
  struct CompressRow {
    std::string codec;
    double sim_seconds = 0.0;
    double net_bytes = 0.0, net_logical = 0.0;
    double peer_bytes = 0.0, peer_logical = 0.0;
    double pcie_bytes = 0.0, pcie_logical = 0.0;
    int iterations = 0;
    int restarts = 0;
    bool converged = false;
  };
  std::vector<CompressRow> compress_rows;
  {
    const int cng = smoke ? 8 : 16;
    const int cnodes = smoke ? 2 : 4;
    const core::Problem pc = core::make_problem(
        a, b, cng, graph::parse_ordering(oname), true, 7, cnodes);
    std::printf("\n  compress (transfer codecs, ng=%d %dx%d):\n", cng, cnodes,
                cng / cnodes);
    for (const char* spec :
         {"none", "halo=fp32,reduce=fp32,ckpt=fp32",
          "halo=frsz2:16,reduce=frsz2:16"}) {
      sim::Machine mc(cng);
      mc.set_topology(cnodes, cng / cnodes);
      const sim::CodecConfig cfg = sim::parse_codec_config(
          std::string(spec) == "none" ? "" : spec);
      mc.set_codec(sim::TrafficClass::kHalo, cfg.halo);
      mc.set_codec(sim::TrafficClass::kReduce, cfg.reduce);
      mc.set_codec(sim::TrafficClass::kCkpt, cfg.ckpt);
      core::SolverOptions so = sopts;
      so.s = smoke ? 5 : opts.get_int("s");
      const core::SolveResult rc = core::ca_gmres(mc, pc, so);
      CompressRow cr;
      cr.codec = spec;
      cr.sim_seconds = rc.stats.time_total;
      const sim::Counters& cc = mc.counters();
      cr.net_bytes = cc.net_bytes;
      cr.net_logical = cc.net_logical_bytes;
      cr.peer_bytes = cc.peer_bytes;
      cr.peer_logical = cc.peer_logical_bytes;
      cr.pcie_bytes = cc.d2h_bytes + cc.h2d_bytes;
      cr.pcie_logical = cc.d2h_logical_bytes + cc.h2d_logical_bytes;
      cr.iterations = rc.stats.iterations;
      cr.restarts = rc.stats.restarts;
      cr.converged = rc.stats.converged;
      compress_rows.push_back(cr);
      const auto ratio = [](double logical, double wire) {
        return (wire > 0.0 && logical > 0.0) ? logical / wire : 1.0;
      };
      std::printf(
          "    %-30s sim=%9.4fs  net=%10.3g B (x%.2f)  pcie=%10.3g B "
          "(x%.2f)  it=%d%s\n",
          spec, cr.sim_seconds, cr.net_bytes, ratio(cr.net_logical,
          cr.net_bytes), cr.pcie_bytes, ratio(cr.pcie_logical, cr.pcie_bytes),
          cr.iterations, cr.converged ? "" : " (nc)");
    }
  }

  // --- precond: none vs block-Jacobi vs ILU(0) vs ILU(1) -----------------
  // The ROADMAP's preconditioning item made concrete: the cant-like and
  // circuit-like analogs under GMRES(30) with a 1200-iteration budget
  // (m=30 x 40 restarts), unpreconditioned vs left block-Jacobi vs the
  // right-preconditioned ILU(k) handle subsystem (src/precond/). The
  // circuit shape exhausts its budget raw; ILU must converge it in fewer
  // iterations AND fewer total charged seconds (setup + solve) — that is
  // the perf gate bench.sh --compare enforces.
  struct PrecondRow {
    std::string matrix;
    std::string precond;  // none | bj | ilu0 | ilu1
    int iterations = 0;
    int restarts = 0;
    double setup_sim_seconds = 0.0;
    double solve_sim_seconds = 0.0;
    double total_sim_seconds = 0.0;
    std::int64_t fill_nnz = 0;
    int max_levels = 0;
    bool converged = false;
  };
  std::vector<PrecondRow> precond_rows;
  {
    const double pscale = smoke ? 0.15 : 0.5;
    std::printf("\n  precond (gmres m=30, budget 1200 iterations):\n");
    for (const char* pname : {"cant", "g3_circuit"}) {
      const sparse::CsrMatrix am = sparse::make_paper_matrix(pname, pscale);
      const std::vector<double> bm =
          bench::make_rhs(am.n_rows, opts.get_int("seed"));
      const core::Problem pm = core::make_problem(
          am, bm, ng, graph::parse_ordering(bench::default_ordering(pname)),
          true, 7);
      core::SolverOptions po;
      po.m = 30;
      po.max_restarts = 40;  // 1200-iteration budget
      po.tol = opts.get_double("tol");
      for (const char* which : {"none", "bj", "ilu0", "ilu1"}) {
        sim::Machine mp(ng);
        PrecondRow row;
        row.matrix = pname;
        row.precond = which;
        if (std::string(which) == "bj") {
          const core::PreconditionedResult r =
              core::preconditioned_gmres(mp, pm, po, 16);
          row.iterations = r.solve.stats.iterations;
          row.restarts = r.solve.stats.restarts;
          row.solve_sim_seconds = r.solve.stats.time_total;
          row.converged = r.solve.stats.converged;
        } else {
          const char* spec = std::string(which) == "none" ? "none"
                             : std::string(which) == "ilu0"
                                 ? "ilu:k=0"
                                 : "ilu:k=1";
          const core::IluPreconditionedResult r = core::preconditioned_gmres(
              mp, pm, po, precond::parse_precond_spec(spec));
          row.iterations = r.solve.stats.iterations;
          row.restarts = r.solve.stats.restarts;
          row.setup_sim_seconds = r.precond.setup_seconds;
          row.solve_sim_seconds =
              r.solve.stats.time_total - r.precond.setup_seconds;
          row.fill_nnz = r.precond.fill_nnz;
          row.max_levels =
              std::max(r.precond.max_levels_l, r.precond.max_levels_u);
          row.converged = r.solve.stats.converged;
        }
        row.total_sim_seconds = row.setup_sim_seconds + row.solve_sim_seconds;
        precond_rows.push_back(row);
        std::printf(
            "    %-10s %-5s it=%-5d setup=%8.4fs  solve=%9.4fs  "
            "total=%9.4fs%s\n",
            pname, which, row.iterations, row.setup_sim_seconds,
            row.solve_sim_seconds, row.total_sim_seconds,
            row.converged ? "" : " (nc)");
      }
    }
  }

  // --- microbench: blocked vs naive, single thread -----------------------
#ifdef _OPENMP
  omp_set_num_threads(1);
#endif
  Rng rng(9);
  blas::DMat v(gram_rows, gram_cols), w(gram_rows, gram_cols);
  for (int j = 0; j < gram_cols; ++j) {
    for (int i = 0; i < gram_rows; ++i) {
      v(i, j) = rng.normal();
      w(i, j) = rng.normal();
    }
  }
  blas::DMat g(gram_cols, gram_cols), g_ref(gram_cols, gram_cols);
  const double t_gram_naive = best_of(reps, [&] {
    gram_naive(gram_rows, gram_cols, v.data(), v.ld(), w.data(), w.ld(),
               g_ref.data(), g_ref.ld());
  });
  const double t_gram_blocked = best_of(reps, [&] {
    blas::gemm(blas::Trans::T, blas::Trans::N, gram_cols, gram_cols,
               gram_rows, 1.0, v.data(), v.ld(), w.data(), w.ld(), 0.0,
               g.data(), g.ld());
  });

  blas::DMat upd1 = v, upd2 = v;
  const double t_panel_naive = best_of(reps, [&] {
    panel_update_naive(gram_rows, gram_cols, w.data(), w.ld(), g.data(),
                       g.ld(), upd1.data(), upd1.ld());
  });
  const double t_panel_blocked = best_of(reps, [&] {
    blas::gemm(blas::Trans::N, blas::Trans::N, gram_rows, gram_cols,
               gram_cols, -1.0, w.data(), w.ld(), g.data(), g.ld(), 1.0,
               upd2.data(), upd2.ld());
  });

  const double gram_speedup = t_gram_naive / t_gram_blocked;
  const double panel_speedup = t_panel_naive / t_panel_blocked;
  std::printf("\n  gram  %d x %d: naive %.4fs, blocked %.4fs  (%.2fx)\n",
              gram_rows, gram_cols, t_gram_naive, t_gram_blocked,
              gram_speedup);
  std::printf("  panel %d x %d: naive %.4fs, blocked %.4fs  (%.2fx)\n",
              gram_rows, gram_cols, t_panel_naive, t_panel_blocked,
              panel_speedup);

  // --- JSON --------------------------------------------------------------
  std::ofstream out(opts.get("out"));
  out << "{\n";
  out << "  \"bench\": \"wallclock\",\n";
  out << "  \"matrix\": \"" << matrix_name << "\",\n";
  out << "  \"n\": " << a.n_rows << ",\n";
  out << "  \"ng\": " << ng << ",\n";
#ifdef _OPENMP
  out << "  \"openmp\": true,\n";
#else
  out << "  \"openmp\": false,\n";
#endif
  out << "  \"nproc\": " << std::thread::hardware_concurrency() << ",\n";
  out << "  \"smoke\": " << json_bool(smoke) << ",\n";
  out << "  \"solver_sweep\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    out << "    {\"solver\": \"" << r.solver << "\", \"workers\": "
        << r.workers << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"sim_seconds\": " << r.sim_seconds << ", \"iterations\": "
        << r.iterations << ", \"converged\": " << json_bool(r.converged)
        << ", \"identical_to_serial\": "
        << json_bool(r.identical_to_serial) << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"event_overlap\": {\n";
  out << "    \"solver\": \"ca_gmres\", \"ng\": " << ng
      << ", \"workers\": 0,\n";
  out << "    \"barrier_sim_seconds\": " << sim_barrier
      << ", \"event_sim_seconds\": " << sim_event << ",\n";
  out << "    \"barrier_mpk_seconds\": " << mpk_barrier
      << ", \"event_mpk_seconds\": " << mpk_event << ",\n";
  out << "    \"barrier_borth_seconds\": " << borth_barrier
      << ", \"event_borth_seconds\": " << borth_event << ",\n";
  out << "    \"barrier_tsqr_seconds\": " << tsqr_barrier
      << ", \"event_tsqr_seconds\": " << tsqr_event << ",\n";
  out << "    \"speedup\": "
      << (sim_event > 0.0 ? sim_barrier / sim_event : 0.0) << ",\n";
  out << "    \"converged\": " << json_bool(event_converged)
      << ", \"identical_results\": " << json_bool(event_identical) << "\n";
  out << "  },\n";
  out << "  \"scale_sweep\": [\n";
  for (std::size_t i = 0; i < scale_rows.size(); ++i) {
    const auto& r = scale_rows[i];
    out << "    {\"ng\": " << r.ng << ", \"nodes\": " << r.nodes
        << ", \"sim_seconds\": " << r.sim_seconds << ", \"net_bytes\": "
        << r.net_bytes << ", \"peer_bytes\": " << r.peer_bytes
        << ", \"iterations\": " << r.iterations << ", \"converged\": "
        << json_bool(r.converged) << "}"
        << (i + 1 < scale_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"hier_reduce\": [\n";
  for (std::size_t i = 0; i < hier_rows.size(); ++i) {
    const auto& r = hier_rows[i];
    out << "    {\"ng\": " << r.ng << ", \"nodes\": " << r.nodes
        << ", \"flat_sim_seconds\": " << r.flat_sim
        << ", \"hier_sim_seconds\": " << r.hier_sim << ", \"speedup\": "
        << (r.hier_sim > 0.0 ? r.flat_sim / r.hier_sim : 0.0)
        << ", \"flat_reduction_net_msgs\": " << r.flat_red_net_msgs
        << ", \"hier_reduction_net_msgs\": " << r.hier_red_net_msgs
        << ", \"hier_cheaper\": " << json_bool(r.hier_sim < r.flat_sim)
        << ", \"at_most_one_msg_per_node\": "
        << json_bool(r.hier_red_net_msgs <= r.nodes)
        << ", \"identical_results\": " << json_bool(r.identical)
        << ", \"converged\": " << json_bool(r.converged) << "}"
        << (i + 1 < hier_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"node_kill_recovery\": [\n";
  for (std::size_t i = 0; i < kill_rows.size(); i += 2) {
    const auto& rp = kill_rows[i];      // partner_checkpoint = true
    const auto& rh = kill_rows[i + 1];  // flat host-checkpoint path
    out << "    {\"ng\": " << rp.ng << ", \"nodes\": " << rp.nodes
        << ", \"partner_sim_seconds\": " << rp.sim_seconds
        << ", \"host_sim_seconds\": " << rh.sim_seconds
        << ", \"partner_time_lost\": " << rp.time_lost
        << ", \"host_time_lost\": " << rh.time_lost
        << ", \"partner_restores\": " << rp.partner_restores
        << ", \"node_failures\": " << rp.node_failures
        << ", \"both_converged\": "
        << json_bool(rp.converged && rh.converged)
        << ", \"partner_cheaper\": "
        << json_bool(rp.sim_seconds < rh.sim_seconds) << "}"
        << (i + 2 < kill_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"compress\": [\n";
  for (std::size_t i = 0; i < compress_rows.size(); ++i) {
    const auto& r = compress_rows[i];
    out << "    {\"codec\": \"" << r.codec << "\", \"sim_seconds\": "
        << r.sim_seconds << ", \"net_bytes\": " << r.net_bytes
        << ", \"net_logical_bytes\": " << r.net_logical
        << ", \"peer_bytes\": " << r.peer_bytes
        << ", \"peer_logical_bytes\": " << r.peer_logical
        << ", \"pcie_bytes\": " << r.pcie_bytes
        << ", \"pcie_logical_bytes\": " << r.pcie_logical
        << ", \"iterations\": " << r.iterations << ", \"restarts\": "
        << r.restarts << ", \"converged\": " << json_bool(r.converged)
        << "}" << (i + 1 < compress_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"precond\": [\n";
  for (std::size_t i = 0; i < precond_rows.size(); ++i) {
    const auto& r = precond_rows[i];
    out << "    {\"matrix\": \"" << r.matrix << "\", \"precond\": \""
        << r.precond << "\", \"iterations\": " << r.iterations
        << ", \"restarts\": " << r.restarts << ", \"setup_sim_seconds\": "
        << r.setup_sim_seconds << ", \"solve_sim_seconds\": "
        << r.solve_sim_seconds << ", \"total_sim_seconds\": "
        << r.total_sim_seconds << ", \"fill_nnz\": " << r.fill_nnz
        << ", \"max_levels\": " << r.max_levels << ", \"converged\": "
        << json_bool(r.converged) << "}"
        << (i + 1 < precond_rows.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"gram_microbench\": {\n";
  out << "    \"rows\": " << gram_rows << ", \"cols\": " << gram_cols
      << ",\n";
  out << "    \"gram_naive_seconds\": " << t_gram_naive
      << ", \"gram_blocked_seconds\": " << t_gram_blocked
      << ", \"gram_speedup\": " << gram_speedup << ",\n";
  out << "    \"panel_naive_seconds\": " << t_panel_naive
      << ", \"panel_blocked_seconds\": " << t_panel_blocked
      << ", \"panel_speedup\": " << panel_speedup << "\n";
  out << "  }\n";
  out << "}\n";
  std::printf("\n  wrote %s\n", opts.get("out").c_str());
  return 0;
}
