// Reproduces paper Fig. 8: simulated time of the matrix powers kernel to
// generate m = 100 basis vectors, as a function of s, on 3 GPUs — total
// time (solid line in the paper) and the SpMV-compute-only time (dashed).
//
// Expected shape: compute time grows mildly with s (boundary-row overhead),
// while communication time (total - compute) collapses going from s = 1 to
// small s because the PCIe latency is paid once per s vectors; for large s
// the growing volume pushes the total back up. Net win in the 10-20% range
// for the banded matrix, as in the paper.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "graph/partition.hpp"
#include "mpk/exec.hpp"
#include "mpk/plan.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

/// Runs ceil(m/s) MPK calls generating ~m vectors; returns elapsed seconds.
double run_mpk(const sparse::CsrMatrix& ap, const std::vector<int>& offsets,
               int s, int m, const sim::PerfModel& pm, int ng) {
  const mpk::MpkPlan plan = mpk::build_mpk_plan(ap, offsets, s);
  mpk::MpkExecutor exec(plan);
  sim::Machine machine(ng, pm);
  sim::DistMultiVec v(plan.rows_per_device(), s + 1);
  for (int d = 0; d < ng; ++d) {
    for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = 1.0;
  }
  int generated = 0;
  while (generated < m) {
    exec.apply(machine, v, 0, s);
    generated += s;
  }
  machine.sync_all();
  return machine.clock().elapsed();
}

void run_matrix(const std::string& name, const std::string& oname,
                double scale, int ng, int m, const std::vector<int>& svals) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  bench::print_header(
      "Fig 8 — MPK performance: " + name + " (" + oname + " ordering)", a);

  const graph::Partition part =
      graph::make_partition(a, ng, graph::parse_ordering(oname), 1);
  const sparse::CsrMatrix ap = sparse::permute_symmetric(a, part.perm);

  Table table({"s", "total (ms)", "compute (ms)", "comm (ms)",
               "speedup vs s=1"});
  sim::PerfModel pm;             // full model
  sim::PerfModel pm_free = pm;   // communication-free variant (dashed line)
  pm_free.pcie_latency_s = 0.0;
  pm_free.pcie_bw = 1e18;

  double t1 = 0.0;
  for (const int s : svals) {
    const double total = run_mpk(ap, part.offsets, s, m, pm, ng);
    const double compute = run_mpk(ap, part.offsets, s, m, pm_free, ng);
    if (s == svals.front()) t1 = total;
    table.add_row({std::to_string(s), bench::ms(total), bench::ms(compute),
                   bench::ms(total - compute), Table::fmt(t1 / total, 2)});
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig08_mpk_perf — paper Fig. 8: MPK time to generate 100 vectors vs "
      "s (simulated, 3 GPUs)");
  opts.add("scale", "1.0", "matrix scale factor");
  opts.add("ng", "3", "number of simulated GPUs");
  opts.add("m", "100", "vectors to generate (paper: 100)");
  opts.add("s", "1,2,3,4,5,6,8", "s values to sweep");
  if (!opts.parse(argc, argv)) return 0;

  const std::vector<int> svals = opts.get_int_list("s");
  run_matrix("cant", "rcm", opts.get_double("scale"), opts.get_int("ng"),
             opts.get_int("m"), svals);
  run_matrix("g3_circuit", "kway", opts.get_double("scale"),
             opts.get_int("ng"), opts.get_int("m"), svals);
  return 0;
}
