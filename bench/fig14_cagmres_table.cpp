// Reproduces paper Fig. 14 — the headline table: CA-GMRES vs GMRES on
// 1-3 simulated GPUs for the cant, G3_circuit, and dielFilterV2real
// analogs, with per-restart phase times.
//
// Columns mirror the paper: restart count, average orthogonalization time
// per restart loop (with the TSQR share), average SpMV/MPK time per restart,
// total time per restart, and CA-GMRES's speedup over GMRES(CGS) on the
// same number of GPUs. Expected shape: MGS >> CGS for GMRES Orth;
// CA-GMRES(1,m) slower than GMRES; CA-GMRES(s=15) with CholQR fastest,
// with speedups in the 1.3-2x band that shrink as GPUs are added.
#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

namespace {

std::string per_restart(double t, int restarts) {
  return restarts > 0 ? bench::ms(t / restarts) : "-";
}

void run_matrix(const std::string& name, double scale, int s_ca, double tol,
                std::uint64_t seed, int max_restarts) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  const int m = bench::default_m(name);
  const std::string oname = bench::default_ordering(name);
  bench::print_header("Fig 14 — " + name + " (" + oname + " ordering, m=" +
                          std::to_string(m) + ")",
                      a);

  const std::vector<double> b = bench::make_rhs(a.n_rows, seed);

  Table table({"solver", "ortho", "ng", "rest", "Ortho/Res", "(TSQR)",
               "SpMV|MPK/Res", "Total/Res", "SpdUp"});

  // GMRES(CGS) per ng for the speedup denominators.
  std::map<int, double> gmres_total_per_restart;

  auto add_gmres = [&](ortho::Method orth, int ng) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 7);
    sim::Machine machine(ng);
    core::SolverOptions opts;
    opts.m = m;
    opts.tol = tol;
    opts.max_restarts = max_restarts;
    opts.gmres_orth = orth;
    const core::SolveResult res = core::gmres(machine, p, opts);
    const auto& st = res.stats;
    const double total_res =
        st.restarts > 0 ? st.time_total / st.restarts : 0.0;
    if (orth == ortho::Method::kCgs) {
      gmres_total_per_restart[ng] = total_res;
    }
    table.add_row({"GMRES(" + std::to_string(m) + ")",
                   ortho::to_string(orth), std::to_string(ng),
                   std::to_string(st.restarts) + (st.converged ? "" : "+"),
                   per_restart(st.time_ortho_total(), st.restarts), "-",
                   per_restart(st.time_spmv, st.restarts),
                   per_restart(st.time_total, st.restarts),
                   st.converged ? "" : "(nc)"});
  };

  auto add_ca = [&](int s, ortho::Method tsqr, bool reorth, int ng) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 7);
    sim::Machine machine(ng);
    core::SolverOptions opts;
    opts.m = m;
    opts.s = s;
    opts.tol = tol;
    opts.max_restarts = max_restarts;
    opts.tsqr = tsqr;
    opts.reorthogonalize = reorth;
    const core::SolveResult res = core::ca_gmres(machine, p, opts);
    const auto& st = res.stats;
    const double total_res =
        st.restarts > 0 ? st.time_total / st.restarts : 0.0;
    std::string speedup = st.converged ? "" : "(nc)";
    const auto it = gmres_total_per_restart.find(ng);
    if (it != gmres_total_per_restart.end() && total_res > 0.0) {
      speedup = Table::fmt(it->second / total_res, 2) + speedup;
    }
    const std::string label = (reorth ? "2x " : "") + ortho::to_string(tsqr);
    table.add_row({"CA-GMRES(" + std::to_string(s) + "," + std::to_string(m) +
                       ")",
                   label, std::to_string(ng),
                   std::to_string(st.restarts) + (st.converged ? "" : "+"),
                   per_restart(st.time_ortho_total(), st.restarts),
                   per_restart(st.time_tsqr, st.restarts),
                   per_restart(st.time_spmv + st.time_mpk, st.restarts),
                   per_restart(st.time_total, st.restarts), speedup});
  };

  add_gmres(ortho::Method::kMgs, 1);
  add_gmres(ortho::Method::kCgs, 1);
  add_gmres(ortho::Method::kCgs, 2);
  add_gmres(ortho::Method::kCgs, 3);
  table.add_separator();
  add_ca(1, ortho::Method::kCholQr, false, 1);
  table.add_separator();
  add_ca(s_ca, ortho::Method::kCgs, true, 1);
  add_ca(s_ca, ortho::Method::kCholQr, true, 1);
  add_ca(s_ca, ortho::Method::kCholQr, true, 2);
  add_ca(s_ca, ortho::Method::kCholQr, true, 3);
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig14_cagmres_table — paper Fig. 14: CA-GMRES vs GMRES per-restart "
      "times and speedups on 1-3 simulated GPUs");
  opts.add("scale", "1.0", "matrix scale factor");
  opts.add("s", "15", "CA-GMRES block size (paper: 15)");
  opts.add("tol", "1e-4", "relative residual tolerance (paper: 4 orders)");
  opts.add("seed", "1234", "rhs seed");
  opts.add("max_restarts", "8",
           "restart cap for the timing runs (per-restart averages stabilize "
           "after a few; raise to 1000 to reproduce full convergence counts)");
  opts.add("matrices", "cant,g3_circuit,dielfilter",
           "comma-separated matrix list");
  if (!opts.parse(argc, argv)) return 0;

  std::string list = opts.get("matrices");
  std::size_t pos = 0;
  while (pos != std::string::npos) {
    const std::size_t comma = list.find(',', pos);
    const std::string name = list.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!name.empty()) {
      run_matrix(name, opts.get_double("scale"), opts.get_int("s"),
                 opts.get_double("tol"),
                 static_cast<std::uint64_t>(opts.get_int("seed")),
                 opts.get_int("max_restarts"));
    }
    pos = (comma == std::string::npos) ? std::string::npos : comma + 1;
  }
  return 0;
}
