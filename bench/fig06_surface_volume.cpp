// Reproduces paper Fig. 6: surface-to-volume ratio of the matrix powers
// kernel vs. s, for the cant-like and G3_circuit-like matrices under the
// natural, RCM, and k-way (KWY) row distributions.
//
// Expected shape (paper): the scrambled circuit matrix has a catastrophic
// ratio under the natural ordering that reordering fixes (but it still
// grows superlinearly in s); the banded cant matrix grows roughly linearly
// under every scheme, with KWY no better than the natural band.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/solver_common.hpp"
#include "mpk/plan.hpp"

using namespace cagmres;

namespace {

void run_matrix(const std::string& name, double scale, int ng,
                const std::vector<int>& svals) {
  const sparse::CsrMatrix a = sparse::make_paper_matrix(name, scale);
  bench::print_header("Fig 6 — surface-to-volume ratio: " + name, a);

  Table table([&] {
    std::vector<std::string> h = {"ordering", "metric"};
    for (const int s : svals) h.push_back("s=" + std::to_string(s));
    return h;
  }());

  for (const auto& oname : {"natural", "rcm", "kway"}) {
    const graph::Ordering scheme = graph::parse_ordering(oname);
    const graph::Partition part = graph::make_partition(a, ng, scheme, 1);
    const sparse::CsrMatrix ap = sparse::permute_symmetric(a, part.perm);

    std::vector<std::string> ratio_row = {oname, "nnz(bnd)/nnz(local)"};
    std::vector<std::string> flops_row = {oname, "extra Mflop / call"};
    for (const int s : svals) {
      const mpk::MpkPlan plan = mpk::build_mpk_plan(ap, part.offsets, s);
      double ratio = 0.0;
      double extra = 0.0;
      for (int d = 0; d < ng; ++d) {
        ratio += plan.stats.surface_to_volume(d);
        extra += plan.stats.extra_flops[static_cast<std::size_t>(d)];
      }
      ratio_row.push_back(Table::fmt(ratio / ng, 3));
      flops_row.push_back(Table::fmt(extra / ng / 1e6, 2));
    }
    table.add_row(ratio_row);
    table.add_row(flops_row);
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(
      "fig06_surface_volume — paper Fig. 6: MPK surface-to-volume ratio vs "
      "s per distribution scheme");
  opts.add("scale", "1.0", "matrix scale factor");
  opts.add("ng", "3", "number of simulated GPUs");
  opts.add("s", "1,2,3,4,5,6,7,8", "s values to sweep");
  if (!opts.parse(argc, argv)) return 0;

  const std::vector<int> svals = opts.get_int_list("s");
  run_matrix("cant", opts.get_double("scale"), opts.get_int("ng"), svals);
  run_matrix("g3_circuit", opts.get_double("scale"), opts.get_int("ng"),
             svals);
  return 0;
}
