// Shared helpers for the paper-figure bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

namespace cagmres::bench {

/// Registers the matrix-selection options every figure bench shares.
inline void add_matrix_options(Options& opts, const std::string& default_name,
                               const std::string& default_scale = "1.0") {
  opts.add("matrix", default_name,
           "paper matrix analog (cant|g3_circuit|dielfilter|nlpkkt) or a "
           "path to a MatrixMarket .mtx file");
  opts.add("scale", default_scale,
           "linear scale factor for the synthetic analogs (1.0 = default "
           "bench size; ~4.0 reaches the paper's sizes)");
  opts.add("seed", "1234", "rhs RNG seed");
}

/// Loads the selected matrix (generator analog or .mtx file).
inline sparse::CsrMatrix load_matrix(const Options& opts) {
  const std::string name = opts.get("matrix");
  if (name.size() > 4 && name.substr(name.size() - 4) == ".mtx") {
    return sparse::read_matrix_market(name);
  }
  return sparse::make_paper_matrix(name, opts.get_double("scale"));
}

/// Standard random right-hand side.
inline std::vector<double> make_rhs(int n, std::uint64_t seed) {
  std::vector<double> b(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (auto& e : b) e = rng.normal();
  return b;
}

/// The paper's per-matrix restart length (Fig. 14 setups).
inline int default_m(const std::string& name) {
  if (name == "cant") return 60;
  if (name == "g3" || name == "g3_circuit") return 30;
  if (name == "dielfilter" || name == "dielFilterV2real") return 180;
  if (name == "nlpkkt" || name == "nlpkkt120") return 120;
  return 60;
}

/// The paper's per-matrix row distribution scheme (Fig. 14 setups).
inline std::string default_ordering(const std::string& name) {
  if (name == "cant") return "natural";
  return "kway";
}

/// Prints the standard bench header: what ran, on which matrix.
inline void print_header(const std::string& title,
                         const sparse::CsrMatrix& a) {
  const sparse::MatrixStats st = sparse::compute_stats(a);
  std::printf("== %s ==\n   matrix: %s\n\n", title.c_str(),
              sparse::to_string(st).c_str());
}

/// Milliseconds with 1 decimal, as the paper's tables print times.
inline std::string ms(double seconds) { return Table::fmt(seconds * 1e3, 1); }

}  // namespace cagmres::bench
