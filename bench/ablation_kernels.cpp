// Ablation: how much of CA-GMRES's win comes from the paper's kernel
// optimizations (§V-F)? Runs CA-GMRES(15, m) with the Standard
// (CUBLAS-4.2-class) vs Optimized (batched-DGEMM / MAGMA-DGEMV) device
// profiles, and GMRES(CGS) under both, on the cant analog.
//
// Expected shape (paper §V-F): under the Standard profile CholQR's Gram
// kernel is so slow that CholQR loses to CGS, and CA-GMRES's advantage over
// GMRES shrinks — the batched DGEMM is what makes BLAS-3 orthogonalization
// pay off.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "ablation_kernels — CA-GMRES and GMRES under the Standard "
      "(CUBLAS-class) vs Optimized (batched/MAGMA) kernel profiles");
  bench::add_matrix_options(opts, "cant");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("s", "15", "CA-GMRES block size");
  opts.add("tol", "1e-4", "relative residual tolerance");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = bench::load_matrix(opts);
  const std::string name = opts.get("matrix");
  const int m = bench::default_m(name);
  const int ng = opts.get_int("ng");
  bench::print_header("Ablation — kernel profile impact: " + name, a);

  const std::vector<double> b = bench::make_rhs(
      a.n_rows, static_cast<std::uint64_t>(opts.get_int("seed")));
  const core::Problem p = core::make_problem(
      a, b, ng, graph::parse_ordering(bench::default_ordering(name)), true, 7);

  Table table({"solver", "ortho", "profile", "rest", "Ortho/Res", "Total/Res",
               "profile speedup"});

  struct Cfg {
    const char* solver;
    ortho::Method method;
  };
  const Cfg cfgs[] = {
      {"GMRES", ortho::Method::kCgs},
      {"CA-GMRES", ortho::Method::kCgs},
      {"CA-GMRES", ortho::Method::kCholQr},
      {"CA-GMRES", ortho::Method::kSvqr},
      {"CA-GMRES", ortho::Method::kCholQrMp},
  };
  for (const Cfg& cfg : cfgs) {
    double std_total = 0.0;
    for (const auto profile :
         {sim::KernelProfile::kStandard, sim::KernelProfile::kOptimized}) {
      sim::PerfModel pm;
      pm.profile = profile;
      sim::Machine machine(ng, pm);
      core::SolverOptions so;
      so.m = m;
      so.s = opts.get_int("s");
      so.tol = opts.get_double("tol");
      so.reorthogonalize = true;
      core::SolveStats st;
      if (std::string(cfg.solver) == "GMRES") {
        so.gmres_orth = cfg.method;
        st = core::gmres(machine, p, so).stats;
      } else {
        so.tsqr = cfg.method;
        st = core::ca_gmres(machine, p, so).stats;
      }
      const double per = st.restarts ? st.time_total / st.restarts : 0.0;
      const bool is_std = (profile == sim::KernelProfile::kStandard);
      if (is_std) std_total = per;
      table.add_row(
          {cfg.solver, ortho::to_string(cfg.method),
           is_std ? "standard" : "optimized", std::to_string(st.restarts),
           bench::ms(st.restarts ? st.time_ortho_total() / st.restarts : 0),
           bench::ms(per),
           is_std ? std::string("1.00")
                  : Table::fmt(per > 0 ? std_total / per : 0.0, 2)});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
