// Reproduces paper Fig. 10 (the TSQR properties table): measured flops and
// GPU-CPU message counts per method against the closed forms, plus the
// measured orthogonality error on a conditioned panel.
//
//   method  | flops            | messages per device
//   MGS     | 2 n s^2 (BLAS-1) | (s+1)(s+2)
//   CGS     | 2 n s^2 (BLAS-2) | 2(s+1)
//   CholQR  | 2 n s^2 (BLAS-3) | 2
//   SVQR    | 2 n s^2 (BLAS-3) | 2
//   CAQR    | 4 n s^2 (BLAS-12)| 2
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ortho/metrics.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "tab10_ortho_costs — paper Fig. 10: measured TSQR flops / messages / "
      "orthogonality error vs the closed forms");
  opts.add("n", "200000", "panel rows");
  opts.add("cols", "16", "panel columns (s+1)");
  opts.add("ng", "2", "simulated GPUs");
  opts.add("kappa_noise", "1e-3",
           "noise level of the graded test panel (smaller = worse "
           "conditioned)");
  if (!opts.parse(argc, argv)) return 0;

  const int n = opts.get_int("n");
  const int cols = opts.get_int("cols");
  const int ng = opts.get_int("ng");
  const double noise = opts.get_double("kappa_noise");

  std::printf("== Fig 10 table — TSQR costs, n=%d, s+1=%d, %d GPUs ==\n\n", n,
              cols, ng);
  Table table({"method", "Gflop meas", "Gflop model", "msgs/dev", "msgs model",
               "||I-Q'Q||", "model error"});

  const double s2 = static_cast<double>(cols) * cols;  // ~ s^2 for s+1 cols
  struct Row {
    ortho::Method method;
    double flop_model;
    int msg_model;
    const char* err_model;
  };
  // CAQR's model includes the explicit formation of Q (paper footnote 6:
  // 4 n s^2 factor+form) plus the 2 n s^2 reduction-Q apply.
  const Row rows[] = {
      {ortho::Method::kMgs, 2.0 * n * s2, cols * (cols + 1), "O(eps k)"},
      {ortho::Method::kCgs, 2.0 * n * s2, 2 * cols, "O(eps k^s)"},
      {ortho::Method::kCholQr, 2.0 * n * s2, 2, "O(eps k^2)"},
      {ortho::Method::kSvqr, 2.0 * n * s2, 2, "O(eps k^2)"},
      {ortho::Method::kCaqr, 6.0 * n * s2, 2, "O(eps)"},
  };

  std::vector<int> split(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    split[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(n) * (d + 1)) / ng -
                         (static_cast<long long>(n) * d) / ng);
  }

  for (const Row& r : rows) {
    // Message/flop counts on a well-conditioned random panel (no fallback
    // paths), error norms on a graded MPK-like panel.
    sim::Machine count_machine(ng);
    {
      sim::DistMultiVec w(split, cols);
      Rng rng(18);
      for (int d = 0; d < ng; ++d) {
        for (int j = 0; j < cols; ++j) {
          for (int i = 0; i < w.local_rows(d); ++i) {
            w.col(d, j)[i] = rng.normal();
          }
        }
      }
      ortho::tsqr(count_machine, r.method, w, 0, cols);
    }

    sim::Machine machine(ng);
    sim::DistMultiVec v(split, cols);
    Rng rng(17);
    // Graded panel: a realistic MPK-like basis with controlled conditioning.
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v.local_rows(d); ++i) v.col(d, 0)[i] = rng.normal();
    }
    for (int j = 1; j < cols; ++j) {
      for (int d = 0; d < ng; ++d) {
        for (int i = 0; i < v.local_rows(d); ++i) {
          v.col(d, j)[i] = 2.0 * v.col(d, j - 1)[i] + noise * rng.normal();
        }
      }
    }
    ortho::tsqr(machine, r.method, v, 0, cols);
    const auto& c = count_machine.counters();
    table.add_row({ortho::to_string(r.method),
                   Table::fmt(c.total_dev_flops() / 1e9, 2),
                   Table::fmt(r.flop_model / 1e9, 2),
                   Table::fmt_int(c.total_msgs() / ng),
                   Table::fmt_int(r.msg_model),
                   [&] {
                     char buf[24];
                     std::snprintf(buf, sizeof buf, "%.1e",
                                   ortho::orthogonality_error(v, 0, cols));
                     return std::string(buf);
                   }(),
                   r.err_model});
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
