// Ablation: monomial vs Newton(+Leja) basis conditioning (paper §IV-A's
// stability discussion). For growing s, reports the condition number of the
// generated MPK block (before orthogonalization) under both bases, and
// whether CA-GMRES converges.
//
// Expected shape: the monomial basis's kappa grows exponentially in s and
// CholQR starts breaking down / needing reorthogonalization; Newton+Leja
// keeps kappa orders of magnitude lower and convergence intact.
#include <cstdio>

#include "bench_common.hpp"
#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "sim/machine.hpp"

using namespace cagmres;

int main(int argc, char** argv) {
  Options opts(
      "ablation_basis — monomial vs Newton basis: block conditioning and "
      "CA-GMRES robustness vs s");
  bench::add_matrix_options(opts, "g3_circuit", "0.5");
  opts.add("m", "30", "restart length");
  opts.add("s", "5,10,15,20,25,30", "block sizes to sweep");
  opts.add("restarts", "10", "restart cap per run");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = bench::load_matrix(opts);
  bench::print_header("Ablation — basis conditioning: " + opts.get("matrix"),
                      a);
  const std::vector<double> b = bench::make_rhs(
      a.n_rows, static_cast<std::uint64_t>(opts.get_int("seed")));
  const core::Problem p =
      core::make_problem(a, b, 1, graph::Ordering::kKway, true, 7);

  Table table({"s", "basis", "kappa(block) avg", "kappa max", "breakdowns",
               "reorth blocks", "converged"});
  struct BasisCfg {
    core::Basis basis;
    bool adaptive;
    const char* label;
  };
  const BasisCfg basis_cfgs[] = {
      {core::Basis::kMonomial, false, "monomial"},
      {core::Basis::kMonomial, true, "monomial+adapt"},
      {core::Basis::kNewton, false, "newton"},
  };
  for (const int s : opts.get_int_list("s")) {
    for (const auto& bc : basis_cfgs) {
      sim::Machine machine(1);
      core::SolverOptions so;
      so.m = opts.get_int("m");
      so.s = s;
      so.basis = bc.basis;
      so.adaptive_s = bc.adaptive;
      so.max_restarts = opts.get_int("restarts");
      so.collect_tsqr_errors = true;
      so.tsqr = ortho::Method::kCholQr;
      core::SolveStats st;
      std::string conv = "?";
      try {
        st = core::ca_gmres(machine, p, so).stats;
        conv = st.converged ? "yes" : "no";
      } catch (const Error&) {
        conv = "FAIL";
      }
      double sum = 0.0, mx = 0.0;
      int cnt = 0;
      for (const auto& e : st.tsqr_errors) {
        if (e.pass != 0) continue;
        sum += e.kappa_block;
        mx = std::max(mx, e.kappa_block);
        ++cnt;
      }
      char avg[24], mxs[24];
      std::snprintf(avg, sizeof avg, "%.1e", cnt ? sum / cnt : 0.0);
      std::snprintf(mxs, sizeof mxs, "%.1e", mx);
      table.add_row({std::to_string(s), bc.label, avg, mxs,
                     std::to_string(st.cholqr_breakdowns),
                     std::to_string(st.reorth_blocks), conv});
    }
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  return 0;
}
