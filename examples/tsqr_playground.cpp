// Example: numerical behavior of the five TSQR procedures on progressively
// worse-conditioned panels (paper §V / Fig. 13 in miniature).
//
// Builds graded tall-skinny panels (each column ~3x the previous plus
// noise, like an MPK monomial basis), factors them with every method, and
// prints the orthogonality error and the simulated cost on 3 GPUs —
// the stability/communication trade-off of Fig. 10 in one table.
#include <cmath>
#include <cstdio>

#include "common/options.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ortho/metrics.hpp"
#include "ortho/tsqr.hpp"
#include "sim/machine.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("tsqr_playground — TSQR stability vs communication demo");
  opts.add("n", "120000", "panel rows");
  opts.add("cols", "20", "panel columns");
  opts.add("ng", "3", "simulated GPUs");
  if (!opts.parse(argc, argv)) return 0;

  const int n = opts.get_int("n");
  const int cols = opts.get_int("cols");
  const int ng = opts.get_int("ng");
  std::vector<int> rows(static_cast<std::size_t>(ng));
  for (int d = 0; d < ng; ++d) {
    rows[static_cast<std::size_t>(d)] =
        static_cast<int>((static_cast<long long>(n) * (d + 1)) / ng -
                         (static_cast<long long>(n) * d) / ng);
  }

  for (const double noise : {1e-1, 1e-5, 1e-9}) {
    sim::DistMultiVec v0(rows, cols);
    Rng rng(3);
    for (int d = 0; d < ng; ++d) {
      for (int i = 0; i < v0.local_rows(d); ++i) v0.col(d, 0)[i] = rng.normal();
    }
    for (int j = 1; j < cols; ++j) {
      for (int d = 0; d < ng; ++d) {
        for (int i = 0; i < v0.local_rows(d); ++i) {
          v0.col(d, j)[i] = 1.3 * v0.col(d, j - 1)[i] + noise * rng.normal();
        }
      }
    }
    const double kappa = ortho::condition_number(v0, 0, cols);
    std::printf("== graded panel, noise %.0e, kappa(V) ~ %.1e ==\n\n", noise,
                kappa);
    Table table({"method", "||I-Q'Q||", "breakdown", "msgs/dev",
                 "sim time (ms)"});
    for (const auto method :
         {ortho::Method::kMgs, ortho::Method::kCgs, ortho::Method::kCholQr,
          ortho::Method::kSvqr, ortho::Method::kCaqr}) {
      sim::DistMultiVec v = v0;
      sim::Machine machine(ng);
      std::string err = "-", bd = "-";
      try {
        const ortho::TsqrResult res =
            ortho::tsqr(machine, method, v, 0, cols);
        char buf[24];
        std::snprintf(buf, sizeof buf, "%.1e",
                      ortho::orthogonality_error(v, 0, cols));
        err = buf;
        bd = res.breakdown ? "yes" : "no";
      } catch (const Error&) {
        err = "FAILED";
      }
      machine.sync_all();
      table.add_row({ortho::to_string(method), err, bd,
                     Table::fmt_int(machine.counters().total_msgs() / ng),
                     Table::fmt(machine.clock().elapsed() * 1e3, 2)});
    }
    std::printf("%s\n", table.str().c_str());
  }
  std::printf(
      "the Fig. 10 trade-off: CAQR is unconditionally stable but slow;\n"
      "CholQR/SVQR are fastest (2 messages, BLAS-3) but lose orthogonality\n"
      "as kappa^2; MGS is stable but pays O(s^2) messages of latency.\n");
  return 0;
}
