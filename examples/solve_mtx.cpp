// Command-line solver: read a MatrixMarket system, solve it with GMRES or
// CA-GMRES on the simulated multi-GPU machine, report everything.
//
//   $ ./solve_mtx --matrix A.mtx [--rhs b.mtx] --solver ca --s 10 --m 60
//
// This is the downstream-user entry point: drop in the paper's real
// SuiteSparse matrices (cant.mtx, G3_circuit.mtx, ...) and reproduce its
// experiments on the authentic data.
#include <cstdio>

#include "blas/blas1.hpp"
#include "common/options.hpp"
#include "core/cagmres.hpp"
#include "core/cpu_gmres.hpp"
#include "core/precondition.hpp"
#include "core/gmres.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("solve_mtx — solve a MatrixMarket system with (CA-)GMRES");
  opts.add("matrix", "", "path to the .mtx file, or a generator name "
                         "(cant|g3_circuit|dielfilter|nlpkkt)");
  opts.add("scale", "1.0", "generator scale (ignored for .mtx files)");
  opts.add("rhs", "", "path to a rhs vector file (default: A * ones)");
  opts.add("solver", "ca", "ca | gmres | cpu");
  opts.add("m", "60", "restart length");
  opts.add("s", "10", "CA-GMRES block size");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("ordering", "kway", "row distribution: natural | rcm | kway");
  opts.add("tsqr", "cholqr", "mgs|cgs|cholqr|svqr|caqr|cholqr_mp");
  opts.add("basis", "newton", "newton | monomial");
  opts.add("reorth", "0", "always reorthogonalize blocks (the paper's 2x)");
  opts.add("adaptive", "0", "adapt s on TSQR breakdowns");
  opts.add("balance", "1", "row/column equilibration before solving");
  opts.add("jacobi_block", "0",
           "block-Jacobi preconditioning with this block size (0 = off)");
  opts.add("tol", "1e-8", "relative residual tolerance");
  opts.add("max_restarts", "1000", "restart cap");
  opts.add("solution", "", "optional path to write x (MatrixMarket array)");
  if (!opts.parse(argc, argv)) return 0;

  if (opts.get("matrix").empty()) {
    std::printf("%s", opts.help().c_str());
    return 1;
  }
  const std::string mname = opts.get("matrix");
  sparse::CsrMatrix a;
  if (mname.size() > 4 && mname.substr(mname.size() - 4) == ".mtx") {
    a = sparse::read_matrix_market(mname);
  } else {
    a = sparse::make_paper_matrix(mname, opts.get_double("scale"));
  }
  std::printf("matrix: %s\n", to_string(sparse::compute_stats(a)).c_str());

  std::vector<double> b;
  if (!opts.get("rhs").empty()) {
    b = sparse::read_vector(opts.get("rhs"));
    CAGMRES_REQUIRE(static_cast<int>(b.size()) == a.n_rows,
                    "rhs length does not match the matrix");
  } else {
    const std::vector<double> ones(static_cast<std::size_t>(a.n_rows), 1.0);
    b.assign(static_cast<std::size_t>(a.n_rows), 0.0);
    sparse::spmv(a, ones.data(), b.data());
  }

  const int ng = opts.get_int("ng");
  core::Problem p = core::make_problem(
      a, b, ng, graph::parse_ordering(opts.get("ordering")),
      opts.get_bool("balance"), 7);
  if (opts.get_int("jacobi_block") > 0) {
    const core::PreconditionStats ps =
        core::apply_block_jacobi(p, opts.get_int("jacobi_block"));
    std::printf("block-Jacobi: %d blocks, nnz %lld -> %lld\n", ps.blocks,
                static_cast<long long>(ps.nnz_before),
                static_cast<long long>(ps.nnz_after));
  }

  core::SolverOptions so;
  so.m = opts.get_int("m");
  so.s = opts.get_int("s");
  so.tol = opts.get_double("tol");
  so.max_restarts = opts.get_int("max_restarts");
  so.tsqr = ortho::parse_method(opts.get("tsqr"));
  so.basis = core::parse_basis(opts.get("basis"));
  so.reorthogonalize = opts.get_bool("reorth");
  so.adaptive_s = opts.get_bool("adaptive");

  sim::Machine machine(ng);
  core::SolveResult res;
  const std::string solver = opts.get("solver");
  if (solver == "ca") {
    res = core::ca_gmres(machine, p, so);
  } else if (solver == "gmres") {
    res = core::gmres(machine, p, so);
  } else if (solver == "cpu") {
    res = core::cpu_gmres(machine, p, so);
  } else {
    throw Error("unknown solver: " + solver + " (expected ca|gmres|cpu)");
  }

  const auto& st = res.stats;
  std::printf("%s: %s in %d restarts / %d iterations\n", solver.c_str(),
              st.converged ? "converged" : "NOT converged", st.restarts,
              st.iterations);
  std::printf("residual (prepared system): %.3e -> %.3e\n",
              st.initial_residual, st.final_residual);
  std::printf("exact residual ||b - A x|| / ||b|| = %.3e\n",
              core::true_residual(a, b, res.x) /
                  blas::nrm2(a.n_rows, b.data()));
  std::printf("simulated time: %.2f ms  (SpMV %.2f | MPK %.2f | Orth %.2f | "
              "BOrth %.2f | TSQR %.2f | other %.2f)\n",
              st.time_total * 1e3, st.time_spmv * 1e3, st.time_mpk * 1e3,
              st.time_orth * 1e3, st.time_borth * 1e3, st.time_tsqr * 1e3,
              st.time_other * 1e3);
  if (st.cholqr_breakdowns > 0) {
    std::printf("CholQR breakdowns: %d (reorthogonalized %d blocks)\n",
                st.cholqr_breakdowns, st.reorth_blocks);
  }
  if (!opts.get("solution").empty()) {
    sparse::write_vector(res.x, opts.get("solution"));
    std::printf("solution written to %s\n", opts.get("solution").c_str());
  }
  return st.converged ? 0 : 2;
}
