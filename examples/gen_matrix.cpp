// Utility: write any of the synthetic matrix analogs (or the generic
// stencil/circuit generators) to a MatrixMarket file, so they can be fed
// to other solvers or inspected offline.
//
//   $ ./gen_matrix --matrix cant --scale 1.0 --out cant_like.mtx
#include <cstdio>

#include "common/options.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("gen_matrix — write a synthetic analog to MatrixMarket");
  opts.add("matrix", "cant",
           "analog name (cant|g3_circuit|dielfilter|nlpkkt) or one of "
           "laplace2d|laplace3d");
  opts.add("scale", "1.0", "analog scale factor");
  opts.add("nx", "100", "grid dimension for laplace2d/laplace3d");
  opts.add("ny", "100", "grid dimension");
  opts.add("nz", "20", "grid dimension (laplace3d)");
  opts.add("convection", "0.0", "nonsymmetric convection strength");
  opts.add("out", "matrix.mtx", "output path");
  if (!opts.parse(argc, argv)) return 0;

  const std::string name = opts.get("matrix");
  sparse::CsrMatrix a;
  if (name == "laplace2d") {
    a = sparse::make_laplace2d(opts.get_int("nx"), opts.get_int("ny"),
                               opts.get_double("convection"));
  } else if (name == "laplace3d") {
    a = sparse::make_laplace3d(opts.get_int("nx"), opts.get_int("ny"),
                               opts.get_int("nz"),
                               opts.get_double("convection"));
  } else {
    a = sparse::make_paper_matrix(name, opts.get_double("scale"));
  }
  std::printf("generated: %s\n", to_string(sparse::compute_stats(a)).c_str());
  sparse::write_matrix_market(a, opts.get("out"));
  std::printf("written to %s\n", opts.get("out").c_str());
  return 0;
}
