// Example: the paper's headline use case — a banded FEM problem where
// CA-GMRES beats GMRES by avoiding communication.
//
// Solves the cant-like beam with standard GMRES and with CA-GMRES across
// 1-3 simulated GPUs, printing the per-phase breakdown that shows where
// the communication-avoiding reformulation wins (fewer reductions in the
// orthogonalization, one halo exchange per s SpMVs).
#include <cstdio>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "core/gmres.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("fem_cantilever — GMRES vs CA-GMRES on a banded FEM beam");
  opts.add("scale", "1.0", "beam scale (1.0 ~ 62k unknowns)");
  opts.add("s", "15", "CA-GMRES block size");
  opts.add("m", "60", "restart length");
  opts.add("max_restarts", "8", "restart cap");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = sparse::make_cant_like(opts.get_double("scale"));
  std::printf("cantilever matrix: %s\n\n",
              to_string(sparse::compute_stats(a)).c_str());
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);

  Table table({"solver", "ng", "msgs/iter", "Orth (ms/res)", "SpMV|MPK (ms/res)",
               "Total (ms/res)", "speedup"});
  std::vector<double> gmres_per(4, 0.0);
  for (int ng = 1; ng <= 3; ++ng) {
    const core::Problem p =
        core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);
    core::SolverOptions so;
    so.m = opts.get_int("m");
    so.max_restarts = opts.get_int("max_restarts");

    sim::Machine mg(ng);
    const auto rg = core::gmres(mg, p, so).stats;
    const double gper = rg.restarts ? rg.time_total / rg.restarts : 0.0;
    gmres_per[static_cast<std::size_t>(ng)] = gper;
    table.add_row(
        {"GMRES", std::to_string(ng),
         Table::fmt(static_cast<double>(mg.counters().total_msgs()) /
                        std::max(rg.iterations, 1), 1),
         Table::fmt(rg.restarts ? rg.time_ortho_total() / rg.restarts * 1e3 : 0, 1),
         Table::fmt(rg.restarts ? rg.time_spmv / rg.restarts * 1e3 : 0, 1),
         Table::fmt(gper * 1e3, 1), "1.00"});

    so.s = opts.get_int("s");
    sim::Machine mc(ng);
    const auto rc = core::ca_gmres(mc, p, so).stats;
    const double cper = rc.restarts ? rc.time_total / rc.restarts : 0.0;
    table.add_row(
        {"CA-GMRES", std::to_string(ng),
         Table::fmt(static_cast<double>(mc.counters().total_msgs()) /
                        std::max(rc.iterations, 1), 1),
         Table::fmt(rc.restarts ? rc.time_ortho_total() / rc.restarts * 1e3 : 0, 1),
         Table::fmt(rc.restarts ? (rc.time_spmv + rc.time_mpk) / rc.restarts * 1e3 : 0, 1),
         Table::fmt(cper * 1e3, 1),
         cper > 0 ? Table::fmt(gper / cper, 2) : "-"});
    table.add_separator();
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "CA-GMRES sends an order of magnitude fewer messages per basis\n"
      "vector; on multiple simulated GPUs that turns into the speedup.\n");
  return 0;
}
