// Example: record a simulated-timeline trace of one CA-GMRES solve and
// write it as Chrome trace-event JSON.
//
//   $ ./trace_solve --out solve_trace.json
//   # then open chrome://tracing (or https://ui.perfetto.dev) and load it
//
// The trace makes the communication-avoiding structure visible: the three
// device rows compute concurrently, the MPK phase shows one pack/d2h/h2d
// burst per s basis vectors, and the CholQR TSQR appears as one gemm +
// one trsm per block instead of GMRES's per-iteration reduction ladders.
//
// Run with CAGMRES_SYNC_MODE=event to see the per-buffer event markers
// (DESIGN.md §10): "event:record" on the producing device row,
// "event:stream_wait" on the waiting device row, and "event:host_wait" on
// the host row — the halo expand then rides behind stream waits instead of
// the barrier gather, which is visible as earlier device starts.
#include <cstdio>
#include <fstream>

#include "common/error.hpp"
#include "common/options.hpp"
#include "core/cagmres.hpp"
#include "precond/precond.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("trace_solve — dump a Chrome trace of a CA-GMRES solve");
  opts.add("out", "solve_trace.json", "output JSON path");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("s", "10", "CA-GMRES block size");
  opts.add("m", "40", "restart length");
  opts.add("max_restarts", "3", "restart cap (keeps the trace readable)");
  opts.add("faults", "",
           "fault schedule, e.g. \"seed=42;kill:d1@t=5ms;nan:p=0.001;"
           "corrupt:p=0.01\" (kinds: kill nan corrupt stall; one-shot "
           "triggers d<i>|*@t=<time>|op=<n>, rates kind:p=<prob>)");
  opts.add("health", "0",
           "arm the numerical health monitors (condition, false-convergence "
           "guard, stagnation watchdog) and the escalation ladder");
  opts.add("deadline", "0",
           "simulated-milliseconds budget for the solve; 0 = unlimited "
           "(overrun exits with a deadline_exceeded error)");
  opts.add("budget", "0",
           "basis-vector (iteration) budget; 0 = unlimited (same error)");
  opts.add("precond", "",
           "right-preconditioner spec, e.g. ilu:k=1,underlap=1 (DESIGN.md "
           "§15); empty reads CAGMRES_PRECOND, \"none\" disables. The "
           "trisolve levels show up as extra kSpmvCsr kernels inside the "
           "\"precond\" phase rows of the trace");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = sparse::make_cant_like(0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = opts.get_int("ng");
  const core::Problem p =
      core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);

  sim::Machine machine(ng);
  machine.enable_trace();
  if (!opts.get("faults").empty()) {
    sim::parse_fault_spec(opts.get("faults"), machine.fault_injector());
  }
  core::SolverOptions so;
  so.m = opts.get_int("m");
  so.s = opts.get_int("s");
  so.max_restarts = opts.get_int("max_restarts");
  if (opts.get_bool("health")) {
    so.health.monitor_condition = true;
    so.health.monitor_residual_gap = true;
    so.health.monitor_stagnation = true;
  }
  so.health.max_solve_seconds = opts.get_double("deadline") * 1e-3;
  so.health.max_iterations = opts.get_int("budget");

  // --precond overrides the CAGMRES_PRECOND env; either arms a cached
  // ILU(k) handle on the options so the solve runs right-preconditioned.
  const precond::PrecondSpec pspec =
      opts.get("precond").empty()
          ? precond::env_precond_spec()
          : precond::parse_precond_spec(opts.get("precond"));
  precond::PrecondHandle handle(pspec);
  if (pspec.armed()) so.precond = &handle;

  core::SolveResult res;
  try {
    res = core::ca_gmres(machine, p, so);
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kDeadlineExceeded) throw;
    // The trace (with its health:* instant events) is still worth keeping.
    std::ofstream out(opts.get("out"));
    machine.trace().write_chrome_json(out);
    std::printf("solve aborted: %s\n", e.what());
    std::printf("partial trace (%zu events, %.2f simulated ms) -> %s\n",
                machine.trace().events().size(),
                machine.clock().elapsed() * 1e3, opts.get("out").c_str());
    return 1;
  }

  std::ofstream out(opts.get("out"));
  machine.trace().write_chrome_json(out);
  std::printf(
      "recorded %zu events over %.2f simulated ms (%d restarts) -> %s\n",
      machine.trace().events().size(), machine.clock().elapsed() * 1e3,
      res.stats.restarts, opts.get("out").c_str());
  std::printf("open chrome://tracing or ui.perfetto.dev and load the file;\n"
              "tid 0 is the host, tid 1..%d are the GPUs.\n\n", ng);

  // With --precond, the per-phase split shows where the preconditioner's
  // charged time went: "precond_setup" is the one-time symbolic + numeric
  // factorization, "precond" is the level-scheduled trisolves riding every
  // basis vector. Both phases also label their slices in the trace.
  if (pspec.armed()) {
    const auto& ps = handle.stats();
    std::printf("precond %s: %d symbolic + %d numeric builds, "
                "%lld applies, fill %lld nnz, %d+%d levels (L+U)\n",
                pspec.to_string().c_str(), ps.symbolic_builds,
                ps.numeric_builds, static_cast<long long>(ps.applies),
                static_cast<long long>(ps.fill_nnz), ps.max_levels_l,
                ps.max_levels_u);
    std::printf("  phase timings: precond_setup %.3f ms, precond (apply) "
                "%.3f ms of %.3f ms total (time_precond %.3f ms)\n\n",
                machine.phases().get("precond_setup") * 1e3,
                machine.phases().get("precond") * 1e3,
                machine.clock().elapsed() * 1e3,
                res.stats.time_precond * 1e3);
  }

  // With --faults, every injection appears as an instant event on the
  // victim's timeline ("fault:kill", "fault:nan", ...) and the recovery
  // work the solver did shows up here and in the trace.
  const auto& rec = res.stats.recovery;
  if (machine.faults_armed()) {
    std::printf("faults injected: %lld (%d device failures, %lld NaN "
                "kernels, %lld corrupt + %lld stalled transfers)\n",
                static_cast<long long>(rec.faults_injected),
                rec.device_failures,
                static_cast<long long>(rec.kernel_faults),
                static_cast<long long>(rec.transfer_corruptions),
                static_cast<long long>(rec.transfer_stalls));
    std::printf("recovery: %lld transfer retries, %d block replays, %d "
                "rollbacks, %d repartitions, %.3f ms simulated time lost; "
                "%d of %d devices still alive, converged=%s\n\n",
                static_cast<long long>(rec.transfer_retries),
                rec.blocks_replayed, rec.rollbacks, rec.repartitions,
                rec.time_lost * 1e3, machine.n_devices(),
                machine.n_physical_devices(),
                res.stats.converged ? "yes" : "no");
  }

  // With --health, every monitor trip and escalation-ladder action is an
  // instant event on the host timeline ("health:...") and logged here.
  const auto& hev = res.stats.health_events;
  if (!hev.empty() || res.stats.ladder_steps > 0) {
    std::printf("health: %zu events, %d ladder steps taken\n", hev.size(),
                res.stats.ladder_steps);
    for (const auto& e : hev) {
      std::printf("  [%8.3f ms] restart %d iter %d: %s", e.time * 1e3,
                  e.restart, e.iteration, core::to_string(e.kind).c_str());
      if (e.action != core::EscalationStep::kNone) {
        std::printf(" -> %s", core::to_string(e.action).c_str());
      }
      if (!e.detail.empty()) std::printf(" (%s)", e.detail.c_str());
      std::printf("\n");
    }
  }
  if (res.stats.recurrence_residual >= 0.0 && res.stats.residual_gap > 0.0) {
    std::printf("residuals at exit: true %.3e, recurrence %.3e; "
                "true/recurrence gap at last restart check %.2fx "
                "(worst %.2fx)\n\n",
                res.stats.final_residual, res.stats.recurrence_residual,
                res.stats.residual_gap, res.stats.residual_gap_max);
  }

  // Where communication went, by interconnect tier (also emitted into the
  // trace as one "traffic:..." instant per restart on the host row). With a
  // transfer codec armed (CAGMRES_COMPRESS) the achieved per-tier
  // compression ratio rides along.
  const auto& tt = res.stats.traffic;
  if (tt.compressed()) {
    std::printf(
        "traffic: peer %.1f KB / %lld msgs (x%.2f), pcie %.1f KB / %lld "
        "msgs (x%.2f), net %.1f KB / %lld msgs (x%.2f)\n",
        tt.peer_bytes / 1024.0, static_cast<long long>(tt.peer_msgs),
        tt.peer_ratio(), tt.pcie_bytes / 1024.0,
        static_cast<long long>(tt.pcie_msgs), tt.pcie_ratio(),
        tt.net_bytes / 1024.0, static_cast<long long>(tt.net_msgs),
        tt.net_ratio());
    std::printf("codec: %s\n\n", machine.codec_config().to_string().c_str());
  } else {
    std::printf(
        "traffic: peer %.1f KB / %lld msgs, pcie %.1f KB / %lld msgs, "
        "net %.1f KB / %lld msgs\n\n",
        tt.peer_bytes / 1024.0, static_cast<long long>(tt.peer_msgs),
        tt.pcie_bytes / 1024.0, static_cast<long long>(tt.pcie_msgs),
        tt.net_bytes / 1024.0, static_cast<long long>(tt.net_msgs));
  }

  // Per-kernel-class breakdown of the device work (the counters behind the
  // trace): effective rate = flops / simulated kernel time.
  std::printf("%-10s %10s %12s %12s\n", "kernel", "calls", "Mflop",
              "GF/s eff");
  const auto& c = machine.counters();
  for (int k = 0; k < sim::kKernelClasses; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (c.kernel_count[ki] == 0) continue;
    std::printf("%-10s %10lld %12.2f %12.1f\n",
                sim::kernel_name(static_cast<sim::Kernel>(k)).c_str(),
                static_cast<long long>(c.kernel_count[ki]),
                c.kernel_flops[ki] / 1e6,
                c.kernel_seconds[ki] > 0.0
                    ? c.kernel_flops[ki] / c.kernel_seconds[ki] / 1e9
                    : 0.0);
  }
  return 0;
}
