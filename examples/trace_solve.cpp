// Example: record a simulated-timeline trace of one CA-GMRES solve and
// write it as Chrome trace-event JSON.
//
//   $ ./trace_solve --out solve_trace.json
//   # then open chrome://tracing (or https://ui.perfetto.dev) and load it
//
// The trace makes the communication-avoiding structure visible: the three
// device rows compute concurrently, the MPK phase shows one pack/d2h/h2d
// burst per s basis vectors, and the CholQR TSQR appears as one gemm +
// one trsm per block instead of GMRES's per-iteration reduction ladders.
#include <cstdio>
#include <fstream>

#include "common/options.hpp"
#include "core/cagmres.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("trace_solve — dump a Chrome trace of a CA-GMRES solve");
  opts.add("out", "solve_trace.json", "output JSON path");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("s", "10", "CA-GMRES block size");
  opts.add("m", "40", "restart length");
  opts.add("max_restarts", "3", "restart cap (keeps the trace readable)");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a = sparse::make_cant_like(0.5);
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);
  const int ng = opts.get_int("ng");
  const core::Problem p =
      core::make_problem(a, b, ng, graph::Ordering::kNatural, true, 1);

  sim::Machine machine(ng);
  machine.enable_trace();
  core::SolverOptions so;
  so.m = opts.get_int("m");
  so.s = opts.get_int("s");
  so.max_restarts = opts.get_int("max_restarts");
  const core::SolveResult res = core::ca_gmres(machine, p, so);

  std::ofstream out(opts.get("out"));
  machine.trace().write_chrome_json(out);
  std::printf(
      "recorded %zu events over %.2f simulated ms (%d restarts) -> %s\n",
      machine.trace().events().size(), machine.clock().elapsed() * 1e3,
      res.stats.restarts, opts.get("out").c_str());
  std::printf("open chrome://tracing or ui.perfetto.dev and load the file;\n"
              "tid 0 is the host, tid 1..%d are the GPUs.\n\n", ng);

  // Per-kernel-class breakdown of the device work (the counters behind the
  // trace): effective rate = flops / simulated kernel time.
  std::printf("%-10s %10s %12s %12s\n", "kernel", "calls", "Mflop",
              "GF/s eff");
  const auto& c = machine.counters();
  for (int k = 0; k < sim::kKernelClasses; ++k) {
    const auto ki = static_cast<std::size_t>(k);
    if (c.kernel_count[ki] == 0) continue;
    std::printf("%-10s %10lld %12.2f %12.1f\n",
                sim::kernel_name(static_cast<sim::Kernel>(k)).c_str(),
                static_cast<long long>(c.kernel_count[ki]),
                c.kernel_flops[ki] / 1e6,
                c.kernel_seconds[ki] > 0.0
                    ? c.kernel_flops[ki] / c.kernel_seconds[ki] / 1e9
                    : 0.0);
  }
  return 0;
}
