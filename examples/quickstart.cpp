// Quickstart: build a sparse system, solve it with CA-GMRES on a simulated
// 3-GPU machine, and inspect the solution and telemetry.
//
//   $ ./quickstart
//
// This walks through the library's whole public surface in ~60 lines:
// generator -> problem preparation (partitioning + balancing) -> solver ->
// solution recovery -> phase timings.
#include <cstdio>
#include <cstdlib>

#include "core/cagmres.hpp"
#include "core/solver_common.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

int main() {
  using namespace cagmres;

  // 1. A nonsymmetric convection-diffusion operator on a 200x200 grid.
  const sparse::CsrMatrix a = sparse::make_laplace2d(200, 200,
                                                     /*convection=*/0.3,
                                                     /*shift=*/0.05);
  std::printf("matrix: %s\n", to_string(sparse::compute_stats(a)).c_str());

  // 2. A right-hand side (here: the vector of ones).
  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);

  // 3. Prepare the distributed problem: k-way partitioning across 3 devices
  //    plus the paper's row/column balancing.
  const int n_gpus = 3;
  const core::Problem problem =
      core::make_problem(a, b, n_gpus, graph::Ordering::kKway);

  // 4. Solve with CA-GMRES(10, 60): Newton basis, CholQR TSQR, automatic
  //    reorthogonalization on Cholesky breakdown — all defaults.
  sim::Machine machine(n_gpus);
  core::SolverOptions opts;
  opts.m = 60;
  opts.s = 10;
  opts.tol = 1e-8;
  // A quantizing transfer codec (CAGMRES_COMPRESS, DESIGN.md §14) carries
  // wire traffic in fp32: the attainable residual is then capped near
  // single precision, so ask only for codec grade.
  if (const char* cc = std::getenv("CAGMRES_COMPRESS"); cc != nullptr && *cc) {
    opts.tol = 1e-6;
  }
  const core::SolveResult result = core::ca_gmres(machine, problem, opts);

  // 5. result.x is in the ORIGINAL row ordering and scaling.
  const auto& st = result.stats;
  std::printf("converged: %s in %d restarts (%d basis vectors)\n",
              st.converged ? "yes" : "no", st.restarts, st.iterations);
  std::printf("residual: %.2e -> %.2e\n", st.initial_residual,
              st.final_residual);
  std::printf("exact check ||b - A x|| = %.2e\n",
              core::true_residual(a, b, result.x));

  // 6. Where did the (simulated) time go?
  std::printf("\nsimulated time on %d GPUs: %.1f ms\n", n_gpus,
              st.time_total * 1e3);
  std::printf("  matrix powers kernel: %.1f ms\n", st.time_mpk * 1e3);
  std::printf("  block orthogonalization: %.1f ms\n", st.time_borth * 1e3);
  std::printf("  TSQR: %.1f ms\n", st.time_tsqr * 1e3);
  std::printf("  SpMV (first restart + residuals): %.1f ms\n",
              st.time_spmv * 1e3);
  std::printf("  other (least squares, checks): %.1f ms\n",
              st.time_other * 1e3);
  return st.converged ? 0 : 1;
}
