// Example: solving a circuit-simulation system and choosing a row
// distribution (paper §IV's G3_circuit story).
//
// Circuit matrices come with arbitrary node numbering, so the "natural"
// ordering has no locality: the matrix powers kernel's dependency halo
// explodes. This example quantifies that with the MPK plan statistics and
// then solves the system under each distribution, showing why the paper
// partitions G3_circuit with k-way partitioning.
#include <cstdio>

#include "common/options.hpp"
#include "common/table.hpp"
#include "core/cagmres.hpp"
#include "mpk/plan.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace cagmres;
  Options opts("circuit_solver — ordering choices for a circuit-like system");
  opts.add("scale", "0.5", "matrix scale (0.5 ~ 25k nodes)");
  opts.add("s", "3", "CA-GMRES block size");
  opts.add("ng", "3", "simulated GPUs");
  opts.add("max_restarts", "30", "restart cap");
  if (!opts.parse(argc, argv)) return 0;

  const sparse::CsrMatrix a =
      sparse::make_circuit_like(opts.get_double("scale"));
  const int ng = opts.get_int("ng");
  const int s = opts.get_int("s");
  std::printf("circuit matrix: %s\n\n",
              to_string(sparse::compute_stats(a)).c_str());

  const std::vector<double> b(static_cast<std::size_t>(a.n_rows), 1.0);

  Table table({"ordering", "halo elems (s=1)", "boundary nnz ratio",
               "MPK comm/call", "restarts", "total (ms)", "converged"});
  for (const char* oname : {"natural", "rcm", "kway"}) {
    const core::Problem p = core::make_problem(
        a, b, ng, graph::parse_ordering(oname), true, 1);

    // Structural costs of the matrix powers kernel under this distribution.
    const mpk::MpkPlan plan1 = mpk::build_mpk_plan(p.a, p.offsets, 1);
    const mpk::MpkPlan plans = mpk::build_mpk_plan(p.a, p.offsets, s);
    double ratio = 0.0;
    for (int d = 0; d < ng; ++d) ratio += plans.stats.surface_to_volume(d);
    ratio /= ng;

    sim::Machine machine(ng);
    core::SolverOptions so;
    so.m = 30;
    so.s = s;
    so.max_restarts = opts.get_int("max_restarts");
    const core::SolveResult res = core::ca_gmres(machine, p, so);

    table.add_row({oname, Table::fmt_int(plan1.stats.scatter_volume()),
                   Table::fmt(ratio, 3),
                   Table::fmt_int(plans.stats.total_volume()),
                   std::to_string(res.stats.restarts),
                   Table::fmt(res.stats.time_total * 1e3, 1),
                   res.stats.converged ? "yes" : "no (cap)"});
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "note how the scrambled natural ordering needs a halo ~the whole\n"
      "matrix, while RCM/KWY confine it — the paper's Fig. 6 in miniature.\n");
  return 0;
}
